#include "src/dist/server.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/support/check.h"
#include "src/support/fs.h"

namespace opec_dist {

namespace {

constexpr double kEwmaAlpha = 0.3;

int DeadlineMs(std::chrono::steady_clock::time_point now,
               std::chrono::steady_clock::time_point deadline) {
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
  if (ms < 0) {
    return 0;
  }
  if (ms > 60000) {
    return 60000;
  }
  return static_cast<int>(ms);
}

// Equality without an early exit on content, so a byte-by-byte probe of the
// shared token learns nothing from response timing.
bool TokenEq(const std::string& a, const std::string& b) {
  unsigned char diff = a.size() == b.size() ? 0 : 1;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    diff = static_cast<unsigned char>(diff | (a[i] ^ b[i]));
  }
  return diff == 0;
}

}  // namespace

CampaignServer::CampaignServer(const opec_campaign::CampaignSpec& spec,
                               const Options& options)
    : options_(options),
      sweep_(SweepKind::kCampaign),
      campaign_seed_(spec.seed),
      cache_(options.cache_dir, options.cache_max_bytes) {
  resolved_.reserve(spec.jobs.size());
  for (size_t i = 0; i < spec.jobs.size(); ++i) {
    resolved_.push_back(opec_campaign::ResolveJobSpec(spec.jobs[i], i, spec.seed,
                                                      spec.timeout_ms,
                                                      options.default_timeout_ms,
                                                      options.trace_dir));
  }
  BuildQueue(spec.jobs.size());
  job_results_.resize(total_);
}

CampaignServer::CampaignServer(uint64_t fuzz_base_seed, uint64_t fuzz_count,
                               const Options& options)
    : options_(options),
      sweep_(SweepKind::kFuzz),
      fuzz_base_seed_(fuzz_base_seed),
      cache_(options.cache_dir, options.cache_max_bytes) {
  BuildQueue(static_cast<size_t>(fuzz_count));
  case_results_.resize(total_);
}

CampaignServer::~CampaignServer() = default;

void CampaignServer::BuildQueue(size_t total) {
  total_ = total;
  have_.assign(total_, 0);
  if (total_ > 0) {
    pending_.push_back(Span{0, total_});
  }
  stats_.queue_high_water = total_;
  stats_.adaptive_units = options_.adaptive_units;
}

void CampaignServer::AddWorker(std::unique_ptr<Transport> transport) {
  WorkerState w;
  w.transport = std::move(transport);
  workers_.push_back(std::move(w));
}

size_t CampaignServer::AliveWorkers() const {
  size_t n = 0;
  for (const WorkerState& w : workers_) {
    if (!w.dead) {
      ++n;
    }
  }
  return n;
}

size_t CampaignServer::PendingJobs() const {
  size_t n = 0;
  for (const Span& s : pending_) {
    n += s.count;
  }
  return n;
}

bool CampaignServer::UnitFullyRecorded(const Span& s) const {
  for (size_t i = s.start; i < s.start + s.count; ++i) {
    if (!have_[i]) {
      return false;
    }
  }
  return true;
}

std::string CampaignServer::SizeKey(size_t index) const {
  if (sweep_ == SweepKind::kFuzz) {
    return "fuzz";
  }
  const opec_campaign::JobSpec& spec = resolved_[index];
  return spec.app + "|" + std::to_string(static_cast<int>(spec.mode)) + "|" +
         std::to_string(static_cast<int>(spec.engine));
}

size_t CampaignServer::CarveCount(const Span& s) const {
  size_t fixed = options_.unit_size == 0 ? 1 : options_.unit_size;
  if (!options_.adaptive_units) {
    return std::min(fixed, s.count);
  }
  size_t cap = std::min(options_.max_unit_size == 0 ? size_t{1} : options_.max_unit_size,
                        s.count);
  double target_ns = static_cast<double>(options_.target_unit_ms) * 1e6;
  double acc = 0.0;
  size_t n = 0;
  while (n < cap) {
    auto it = ewma_ns_.find(SizeKey(s.start + n));
    if (it == ewma_ns_.end() || it->second <= 0.0) {
      // No sample for this job class yet: bootstrap with the fixed size so
      // the first units still parallelize.
      if (n == 0) {
        return std::min(fixed, cap);
      }
      break;
    }
    if (n > 0 && acc + it->second > target_ns) {
      break;
    }
    acc += it->second;
    ++n;
  }
  return std::max<size_t>(1, n);
}

void CampaignServer::NoteUnitSize(size_t carved) {
  uint64_t c = static_cast<uint64_t>(carved);
  if (stats_.unit_size_min == 0 || c < stats_.unit_size_min) {
    stats_.unit_size_min = c;
  }
  stats_.unit_size_max = std::max(stats_.unit_size_max, c);
}

void CampaignServer::EnqueueFrame(size_t wi, const Frame& frame) {
  WorkerState& w = workers_[wi];
  if (w.dead) {
    return;
  }
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  w.outbox_bytes += bytes.size();
  w.outbox.push_back(std::move(bytes));
  if (w.outbox_bytes > options_.outbox_max_bytes) {
    KillWorker(wi, "outbox overflow (peer not draining)");
    return;
  }
  DrainOutbox(wi);
}

void CampaignServer::DrainOutbox(size_t wi) {
  WorkerState& w = workers_[wi];
  if (w.dead) {
    return;
  }
  while (!w.outbox.empty()) {
    const std::vector<uint8_t>& buf = w.outbox.front();
    int n = w.transport->SendSome(buf.data() + w.outbox_off, buf.size() - w.outbox_off);
    if (n < 0) {
      KillWorker(wi, w.transport->error().c_str());
      return;
    }
    if (n == 0) {
      return;  // peer's pipe is full; POLLOUT will resume the drain
    }
    w.outbox_off += static_cast<size_t>(n);
    w.outbox_bytes -= static_cast<uint64_t>(n);
    if (w.outbox_off == w.outbox.front().size()) {
      w.outbox.pop_front();
      w.outbox_off = 0;
    }
  }
}

void CampaignServer::KillWorker(size_t wi, const char* why) {
  WorkerState& w = workers_[wi];
  if (w.dead) {
    return;
  }
  w.dead = true;
  w.transport->Close();
  w.outbox.clear();
  w.outbox_off = 0;
  w.outbox_bytes = 0;
  if (!w.shutdown_sent) {
    ++stats_.workers_died;
    std::fprintf(stderr, "campaignd: worker %zu (%s) lost: %s\n", wi,
                 w.name.empty() ? "?" : w.name.c_str(), why);
  }
  RequeueWorkerUnits(wi);
}

void CampaignServer::DropConnection(size_t wi, const char* why) {
  WorkerState& w = workers_[wi];
  if (w.dead) {
    return;
  }
  if (!w.resumable || !w.hello_done || w.shutdown_sent) {
    KillWorker(wi, why);
    return;
  }
  // A resumable worker's link dropped: park its leases under its worker id.
  // If it reconnects before the lease clock runs out it resumes in place;
  // otherwise ExpireLeases falls back to the plain requeue path.
  w.dead = true;
  w.transport->Close();
  w.outbox.clear();
  w.outbox_off = 0;
  w.outbox_bytes = 0;
  ++stats_.links_lost;
  std::fprintf(stderr, "campaignd: worker %zu (%s) link lost: %s; leases parked\n", wi,
               w.name.empty() ? "?" : w.name.c_str(), why);
  ParkWorkerUnits(wi);
}

void CampaignServer::RequeueUnit(uint64_t unit_id, bool expired) {
  auto issued_it = issued_.find(unit_id);
  auto lease_it = leases_.find(unit_id);
  if (lease_it != leases_.end()) {
    const Lease& lease = lease_it->second;
    if (!lease.parked && lease.worker != kNoWorker && lease.worker < workers_.size()) {
      WorkerState& holder = workers_[lease.worker];
      if (holder.inflight > 0) {
        --holder.inflight;
      }
    }
    leases_.erase(lease_it);
  }
  if (issued_it == issued_.end()) {
    return;
  }
  Span s = issued_it->second;
  issued_.erase(issued_it);
  if (UnitFullyRecorded(s)) {
    // A late/duplicate delivery already recorded every row: the unit is done,
    // not lost — erase it silently so the stats never double-count it.
    return;
  }
  pending_.push_front(s);
  if (expired) {
    ++stats_.leases_expired;
  } else {
    ++stats_.units_reissued;
  }
  stats_.queue_high_water =
      std::max(stats_.queue_high_water, static_cast<uint64_t>(PendingJobs()));
}

void CampaignServer::RequeueWorkerUnits(size_t wi) {
  std::vector<uint64_t> requeue;
  for (const auto& [unit_id, lease] : leases_) {
    if (!lease.parked && lease.worker == wi) {
      requeue.push_back(unit_id);
    }
  }
  // Recovery work goes to the *front* of the queue so the sweep's tail is not
  // stuck behind untouched units. Requeue in descending span order so the
  // front ends up sorted ascending — a deterministic reissue order.
  std::sort(requeue.begin(), requeue.end(), [&](uint64_t a, uint64_t b) {
    return issued_[a].start > issued_[b].start;
  });
  for (uint64_t unit_id : requeue) {
    RequeueUnit(unit_id, /*expired=*/false);
  }
  workers_[wi].inflight = 0;
}

void CampaignServer::ParkWorkerUnits(size_t wi) {
  WorkerState& w = workers_[wi];
  std::vector<uint64_t> held;
  for (const auto& [unit_id, lease] : leases_) {
    if (!lease.parked && lease.worker == wi) {
      held.push_back(unit_id);
    }
  }
  for (uint64_t unit_id : held) {
    auto issued_it = issued_.find(unit_id);
    if (issued_it == issued_.end() || UnitFullyRecorded(issued_it->second)) {
      if (issued_it != issued_.end()) {
        issued_.erase(issued_it);
      }
      leases_.erase(unit_id);
      continue;
    }
    Lease& lease = leases_[unit_id];
    lease.parked = true;
    lease.worker = kNoWorker;
    lease.worker_id = w.worker_id;
  }
  w.inflight = 0;
}

void CampaignServer::AdoptParkedLeases(size_t wi) {
  WorkerState& w = workers_[wi];
  Clock::time_point now = Clock::now();
  for (auto& [unit_id, lease] : leases_) {
    if (!lease.parked || lease.worker_id != w.worker_id) {
      continue;
    }
    lease.parked = false;
    lease.worker = wi;
    lease.needs_resend = true;
    if (options_.lease_ms != 0) {
      lease.deadline = now + std::chrono::milliseconds(options_.lease_ms);
    }
    ++w.inflight;
  }
}

void CampaignServer::ExpireLeases(Clock::time_point now) {
  if (options_.lease_ms == 0) {
    return;
  }
  std::vector<uint64_t> expired;
  for (const auto& [unit_id, lease] : leases_) {
    if (lease.deadline <= now) {
      expired.push_back(unit_id);
    }
  }
  std::sort(expired.begin(), expired.end(), [&](uint64_t a, uint64_t b) {
    return issued_[a].start > issued_[b].start;
  });
  for (uint64_t unit_id : expired) {
    RequeueUnit(unit_id, /*expired=*/true);
  }
}

void CampaignServer::RecordResult(size_t wi, const ResultMsg& msg) {
  WorkerState& w = workers_[wi];
  if (!w.hello_done) {
    return;
  }
  Session& session = sessions_[w.session_key];
  session.cache = msg.cache;  // cumulative sample; latest wins

  auto lease_it = leases_.find(msg.unit_id);
  bool own_lease = lease_it != leases_.end() && !lease_it->second.parked &&
                   lease_it->second.worker == wi;
  if (!own_lease) {
    // The lease expired (and was requeued/re-carved) or belongs to a prior
    // incarnation: the rows still count via first-write-wins below, but the
    // delivery itself is late.
    ++stats_.late_results;
  }

  Clock::time_point now = Clock::now();
  if (own_lease && sweep_ == SweepKind::kFuzz && lease_it->second.rows > 0) {
    double elapsed_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - lease_it->second.issued_at)
            .count());
    double per_row = elapsed_ns / static_cast<double>(lease_it->second.rows);
    double& e = ewma_ns_["fuzz"];
    e = e <= 0.0 ? per_row : (1.0 - kEwmaAlpha) * e + kEwmaAlpha * per_row;
  }

  size_t rows = msg.indexes.size();
  for (size_t k = 0; k < rows; ++k) {
    size_t index = static_cast<size_t>(msg.indexes[k]);
    if (index >= total_) {
      continue;  // malformed row; drop rather than corrupt the table
    }
    if (sweep_ == SweepKind::kCampaign && k < msg.jobs.size() && msg.jobs[k].wall_ns > 0) {
      // Feed the sizing model from every executed row, duplicates included —
      // they are real observations of this job class's wall time.
      const opec_campaign::JobSpec& spec = msg.jobs[k].spec;
      std::string key = spec.app + "|" + std::to_string(static_cast<int>(spec.mode)) +
                        "|" + std::to_string(static_cast<int>(spec.engine));
      double x = static_cast<double>(msg.jobs[k].wall_ns);
      double& e = ewma_ns_[key];
      e = e <= 0.0 ? x : (1.0 - kEwmaAlpha) * e + kEwmaAlpha * x;
    }
    if (have_[index]) {
      continue;  // duplicate delivery of a re-issued unit; first write wins
    }
    if (sweep_ == SweepKind::kCampaign) {
      if (k >= msg.jobs.size()) {
        continue;
      }
      job_results_[index] = msg.jobs[k];
      job_results_[index].index = index;
    } else {
      if (k >= msg.cases.size()) {
        continue;
      }
      case_results_[index] = msg.cases[k];
    }
    have_[index] = 1;
    ++done_count_;
    if (on_progress_) {
      on_progress_(done_count_, total_);
    }
  }

  auto issued_it = issued_.find(msg.unit_id);
  bool complete = issued_it == issued_.end() || UnitFullyRecorded(issued_it->second);
  if (own_lease) {
    if (complete) {
      leases_.erase(msg.unit_id);
      if (issued_it != issued_.end()) {
        issued_.erase(issued_it);
      }
      if (w.inflight > 0) {
        --w.inflight;
      }
    } else {
      // Partial delivery (resume flow): the worker still owns the remainder;
      // give it a fresh lease clock.
      if (options_.lease_ms != 0) {
        lease_it->second.deadline = now + std::chrono::milliseconds(options_.lease_ms);
      }
    }
  } else if (complete && issued_it != issued_.end()) {
    // A late delivery finished a unit someone else still holds: cancel the
    // surviving lease silently — the unit is done, nothing was lost.
    auto live = leases_.find(msg.unit_id);
    if (live != leases_.end()) {
      if (!live->second.parked && live->second.worker != kNoWorker &&
          live->second.worker < workers_.size()) {
        WorkerState& holder = workers_[live->second.worker];
        if (holder.inflight > 0) {
          --holder.inflight;
        }
      }
      leases_.erase(live);
    }
    issued_.erase(issued_it);
  }
}

bool CampaignServer::SendAssign(size_t wi, uint64_t unit_id, const Span& span) {
  AssignMsg assign;
  assign.unit_id = unit_id;
  for (size_t i = span.start; i < span.start + span.count; ++i) {
    if (have_[i]) {
      continue;
    }
    assign.indexes.push_back(i);
    if (sweep_ == SweepKind::kCampaign) {
      assign.jobs.push_back(resolved_[i]);
    } else {
      assign.fuzz_seeds.push_back(fuzz_base_seed_ + i);
    }
  }
  if (assign.indexes.empty()) {
    return false;
  }
  EnqueueFrame(wi, MakeFrame(FrameType::kAssign, [&](opec_hw::StateWriter& sw) {
                 WriteAssign(sw, sweep_, assign);
               }));
  return true;
}

bool CampaignServer::HandleHello(size_t wi, const HelloMsg& hello) {
  WorkerState& w = workers_[wi];
  auto reject = [&](const char* why) {
    // Refuse before a single byte flows back: no welcome, no error frame —
    // just the hangup. (A frame would leak that a campaignd is listening.)
    ++stats_.peers_rejected;
    std::fprintf(stderr, "campaignd: peer '%s' rejected: %s\n",
                 hello.worker_name.empty() ? "?" : hello.worker_name.c_str(), why);
    w.dead = true;
    w.transport->Close();
    w.outbox.clear();
    w.outbox_off = 0;
    w.outbox_bytes = 0;
    return false;
  };
  if (w.hello_done) {
    KillWorker(wi, "duplicate hello");
    return false;
  }
  uint32_t negotiated = NegotiateVersion(hello);
  if (negotiated == 0) {
    return reject("no common protocol version");
  }
  if (!options_.auth_token.empty() && !TokenEq(hello.token, options_.auth_token)) {
    return reject("bad auth token");
  }
  w.name = hello.worker_name;
  w.version = negotiated;
  w.worker_id = hello.worker_id;
  w.resumable = hello.resumable && !hello.worker_id.empty() && negotiated >= 2;
  w.hello_done = true;
  if (!w.worker_id.empty()) {
    // A live connection claiming the same id is stale (the worker gave up on
    // it and redialed): park it and let the new connection adopt.
    for (size_t j = 0; j < workers_.size(); ++j) {
      if (j != wi && !workers_[j].dead && workers_[j].hello_done &&
          workers_[j].worker_id == w.worker_id) {
        DropConnection(j, "superseded by reconnect");
      }
    }
    w.session_key = w.worker_id;
    if (seen_ids_.insert(w.worker_id).second) {
      ++stats_.workers;
      session_order_.push_back(w.session_key);
      sessions_[w.session_key];
    } else {
      ++stats_.reconnects;
    }
  } else {
    w.session_key = "conn#" + std::to_string(wi);
    ++stats_.workers;
    session_order_.push_back(w.session_key);
    sessions_[w.session_key];
  }
  if (w.resumable) {
    AdoptParkedLeases(wi);
  }
  WelcomeMsg welcome;
  welcome.version = negotiated;
  welcome.sweep = sweep_;
  welcome.cold_boot = options_.cold_boot;
  welcome.snapshot_dir = options_.snapshot_dir;
  welcome.chunk_threshold = options_.chunk_threshold;
  EnqueueFrame(wi, MakeFrame(FrameType::kWelcome,
                             [&](opec_hw::StateWriter& sw) { WriteWelcome(sw, welcome); }));
  return !workers_[wi].dead;
}

bool CampaignServer::HandleFrame(size_t wi, const Frame& frame) {
  WorkerState& w = workers_[wi];
  opec_hw::StateReader r(frame.payload);
  switch (frame.type) {
    case FrameType::kHello: {
      return HandleHello(wi, ReadHello(r));
    }
    case FrameType::kRequestWork: {
      if (!w.hello_done) {
        KillWorker(wi, "work request before hello");
        return false;
      }
      Clock::time_point now = Clock::now();
      // Adopted leases first: re-assign the remainder of a unit that survived
      // a link drop, under its original unit id.
      for (;;) {
        uint64_t resume_id = 0;
        bool have_resume = false;
        for (const auto& [unit_id, lease] : leases_) {
          if (!lease.parked && lease.worker == wi && lease.needs_resend &&
              (!have_resume || unit_id < resume_id)) {
            resume_id = unit_id;
            have_resume = true;
          }
        }
        if (!have_resume) {
          break;
        }
        Lease& lease = leases_[resume_id];
        lease.needs_resend = false;
        auto issued_it = issued_.find(resume_id);
        if (issued_it == issued_.end() || UnitFullyRecorded(issued_it->second)) {
          // Everything in it was recorded while the link was down.
          if (issued_it != issued_.end()) {
            issued_.erase(issued_it);
          }
          leases_.erase(resume_id);
          if (w.inflight > 0) {
            --w.inflight;
          }
          continue;
        }
        if (options_.lease_ms != 0) {
          lease.deadline = now + std::chrono::milliseconds(options_.lease_ms);
        }
        lease.rows = 0;
        for (size_t i = issued_it->second.start;
             i < issued_it->second.start + issued_it->second.count; ++i) {
          if (!have_[i]) {
            ++lease.rows;
          }
        }
        SendAssign(wi, resume_id, issued_it->second);
        return true;
      }
      // Advance the front span past rows recorded by late/duplicate
      // deliveries — re-issuing them would burn a worker on jobs that cannot
      // advance done_count_ (with a tiny --lease-ms that livelocks the sweep).
      while (!pending_.empty()) {
        Span& front = pending_.front();
        while (front.count > 0 && have_[front.start]) {
          ++front.start;
          --front.count;
        }
        if (front.count == 0) {
          pending_.pop_front();
        } else {
          break;
        }
      }
      if (!pending_.empty()) {
        Span& front = pending_.front();
        size_t take = CarveCount(front);
        Span unit{front.start, take};
        front.start += take;
        front.count -= take;
        if (front.count == 0) {
          pending_.pop_front();
        }
        uint64_t unit_id = next_unit_id_++;
        issued_[unit_id] = unit;
        Lease lease;
        lease.worker = wi;
        lease.worker_id = w.worker_id;
        lease.issued_at = now;
        lease.deadline = now + std::chrono::milliseconds(
                                   options_.lease_ms == 0 ? 0 : options_.lease_ms);
        lease.rows = 0;
        for (size_t i = unit.start; i < unit.start + unit.count; ++i) {
          if (!have_[i]) {
            ++lease.rows;
          }
        }
        leases_[unit_id] = lease;
        ++stats_.units_issued;
        ++w.inflight;
        Session& session = sessions_[w.session_key];
        session.max_inflight = std::max(session.max_inflight, w.inflight);
        NoteUnitSize(take);
        SendAssign(wi, unit_id, unit);
      } else if (Done()) {
        w.shutdown_sent = true;
        EnqueueFrame(wi, MakeFrame(FrameType::kShutdown));
      } else {
        NoWorkMsg nw;
        nw.retry_ms = options_.retry_ms;
        EnqueueFrame(wi, MakeFrame(FrameType::kNoWork,
                                   [&](opec_hw::StateWriter& sw) { WriteNoWork(sw, nw); }));
      }
      return !workers_[wi].dead;
    }
    case FrameType::kResult: {
      if (!w.hello_done) {
        KillWorker(wi, "result before hello");
        return false;
      }
      ResultMsg msg = ReadResult(r, sweep_);
      RecordResult(wi, msg);
      return true;
    }
    case FrameType::kArtifactQuery: {
      ArtifactQueryMsg q = ReadArtifactQuery(r);
      ArtifactInfoMsg info;
      info.key = q.key;
      auto it = artifact_keys_.find(q.key);
      if (it != artifact_keys_.end()) {
        info.known = true;
        info.digest = it->second;
      }
      EnqueueFrame(wi, MakeFrame(FrameType::kArtifactInfo, [&](opec_hw::StateWriter& sw) {
                     WriteArtifactInfo(sw, info);
                   }));
      return !workers_[wi].dead;
    }
    case FrameType::kArtifactFetch: {
      ArtifactFetchMsg f = ReadArtifactFetch(r);
      std::vector<uint8_t> bytes;
      bool found = cache_.Get(f.digest, &bytes);
      uint32_t threshold =
          options_.chunk_threshold == 0 ? kDefaultChunkThreshold : options_.chunk_threshold;
      if (w.version >= 2 && found && bytes.size() > threshold) {
        // Stream in bounded slices: the outbox interleaves fairness at frame
        // granularity, so one snapshot-sized reply never monopolizes a link.
        uint64_t total = bytes.size();
        for (uint64_t off = 0; off < total && !workers_[wi].dead; off += threshold) {
          ArtifactChunkMsg chunk;
          chunk.digest = f.digest;
          chunk.total = total;
          chunk.offset = off;
          uint64_t end = std::min<uint64_t>(off + threshold, total);
          chunk.bytes.assign(bytes.begin() + static_cast<ptrdiff_t>(off),
                             bytes.begin() + static_cast<ptrdiff_t>(end));
          EnqueueFrame(wi, MakeFrame(FrameType::kArtifactChunk,
                                     [&](opec_hw::StateWriter& sw) {
                                       WriteArtifactChunk(sw, chunk);
                                     }));
          ++stats_.chunks_sent;
        }
      } else {
        ArtifactDataMsg data;
        data.digest = f.digest;
        data.found = found;
        data.bytes = std::move(bytes);
        EnqueueFrame(wi, MakeFrame(FrameType::kArtifactData, [&](opec_hw::StateWriter& sw) {
                       WriteArtifactData(sw, data);
                     }));
      }
      return !workers_[wi].dead;
    }
    case FrameType::kArtifactAnnounce: {
      ArtifactAnnounceMsg a = ReadArtifactAnnounce(r);
      if (a.with_bytes) {
        uint64_t actual = cache_.Put(a.bytes);
        if (actual != a.digest) {
          // Announced digest does not match the content: refuse to register
          // the key (the bytes are cached under their true digest, harmless).
          ++stats_.artifact_digest_mismatches;
          return true;
        }
      }
      // First announcement wins: every worker derives the artifact from the
      // same deterministic build, so later digests must agree; a disagreement
      // is recorded and the original mapping kept.
      auto it = artifact_keys_.find(a.key);
      if (it == artifact_keys_.end()) {
        artifact_keys_[a.key] = a.digest;
      } else if (it->second != a.digest) {
        ++stats_.artifact_digest_mismatches;
      }
      return true;
    }
    case FrameType::kWelcome:
    case FrameType::kAssign:
    case FrameType::kNoWork:
    case FrameType::kShutdown:
    case FrameType::kArtifactInfo:
    case FrameType::kArtifactData:
    case FrameType::kArtifactChunk:
      break;
  }
  KillWorker(wi, "unexpected frame from worker");
  return false;
}

std::string CampaignServer::Serve() {
  // On an early bail-out, hang up on every connected worker: self-hosted
  // children block in Recv waiting for kWelcome, and the parent waitpid()s
  // them — without the EOF they would deadlock against each other.
  auto fail = [&](std::string err) {
    for (WorkerState& w : workers_) {
      w.dead = true;
      w.transport->Close();
    }
    return err;
  };
  for (const std::string& dir : {options_.snapshot_dir, options_.trace_dir}) {
    if (!dir.empty()) {
      std::string err = opec_support::EnsureDirs(dir);
      if (!err.empty()) {
        return fail("campaign output directory unusable: " + err);
      }
    }
  }
  if (!cache_.ok()) {
    return fail(cache_.error());
  }
  stats_.active = true;

  // Pumps every complete frame out of one connection's receive buffer.
  // Returns false when the connection died (EOF, I/O error, protocol kill).
  auto pump = [&](size_t wi) {
    for (;;) {
      if (workers_[wi].dead) {
        return false;
      }
      Frame frame;
      bool got = false;
      Transport::Status st = workers_[wi].transport->RecvAsync(&frame, &got);
      if (st == Transport::Status::kEof) {
        DropConnection(wi, "disconnected");
        return false;
      }
      if (st == Transport::Status::kError) {
        DropConnection(wi, workers_[wi].transport->error().c_str());
        return false;
      }
      if (!got) {
        return true;
      }
      try {
        opec_support::ScopedCheckThrow capture;
        if (!HandleFrame(wi, frame)) {
          return false;
        }
      } catch (const std::exception& e) {
        KillWorker(wi, e.what());
        return false;
      }
    }
  };

  while (!Done()) {
    if (AliveWorkers() == 0 && listen_fd_ < 0) {
      return "all workers disconnected with " + std::to_string(total_ - done_count_) +
             " jobs incomplete";
    }
    Clock::time_point now = Clock::now();
    ExpireLeases(now);

    std::vector<pollfd> fds;
    std::vector<size_t> fd_worker;
    if (listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_worker.push_back(static_cast<size_t>(-1));
    }
    for (size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].dead) {
        short events = POLLIN;
        if (!workers_[i].outbox.empty()) {
          events = static_cast<short>(events | POLLOUT);
        }
        fds.push_back({workers_[i].transport->fd(), events, 0});
        fd_worker.push_back(i);
      }
    }

    int timeout_ms = 100;
    if (options_.lease_ms != 0 && !leases_.empty()) {
      Clock::time_point first = leases_.begin()->second.deadline;
      for (const auto& [id, lease] : leases_) {
        first = std::min(first, lease.deadline);
      }
      timeout_ms = std::min(timeout_ms, DeadlineMs(now, first) + 1);
    }
    int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return fail(std::string("poll: ") + std::strerror(errno));
    }
    for (size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents == 0) {
        continue;
      }
      if (fd_worker[k] == static_cast<size_t>(-1)) {
        std::string err;
        uint32_t peer_ip = 0;
        int cfd = TcpAccept(listen_fd_, &err, &peer_ip);
        if (cfd >= 0) {
          if (!CidrMatch(options_.allow, peer_ip)) {
            // Refused before a single frame is read or written.
            ++stats_.peers_rejected;
            std::fprintf(stderr, "campaignd: peer %u.%u.%u.%u rejected: not allow-listed\n",
                         (peer_ip >> 24) & 0xff, (peer_ip >> 16) & 0xff,
                         (peer_ip >> 8) & 0xff, peer_ip & 0xff);
            ::close(cfd);
          } else {
            AddWorker(std::make_unique<FdTransport>(cfd));
          }
        }
        continue;
      }
      size_t wi = fd_worker[k];
      if (workers_[wi].dead) {
        continue;
      }
      if ((fds[k].revents & POLLOUT) != 0) {
        DrainOutbox(wi);
      }
      if (workers_[wi].dead) {
        continue;
      }
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        pump(wi);
      }
    }
  }

  // Sweep complete: tell everyone to go home and drain stragglers (workers
  // mid-duplicate-unit still deliver a kResult + kRequestWork pair). The
  // outboxes must keep draining here too — the shutdown frames ride them.
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (!workers_[i].dead && workers_[i].hello_done) {
      workers_[i].shutdown_sent = true;
      EnqueueFrame(i, MakeFrame(FrameType::kShutdown));
    } else if (!workers_[i].dead) {
      // Connected but never said hello; nothing to drain.
      workers_[i].dead = true;
      workers_[i].transport->Close();
    }
  }
  Clock::time_point drain_deadline =
      Clock::now() + std::chrono::milliseconds(options_.drain_ms);
  while (AliveWorkers() > 0 && Clock::now() < drain_deadline) {
    std::vector<pollfd> fds;
    std::vector<size_t> fd_worker;
    for (size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].dead) {
        short events = POLLIN;
        if (!workers_[i].outbox.empty()) {
          events = static_cast<short>(events | POLLOUT);
        }
        fds.push_back({workers_[i].transport->fd(), events, 0});
        fd_worker.push_back(i);
      }
    }
    int rc = ::poll(fds.data(), fds.size(), 100);
    if (rc < 0 && errno != EINTR) {
      break;
    }
    for (size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents == 0) {
        continue;
      }
      size_t wi = fd_worker[k];
      if (workers_[wi].dead) {
        continue;
      }
      if ((fds[k].revents & POLLOUT) != 0) {
        DrainOutbox(wi);
      }
      if (workers_[wi].dead || (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      for (;;) {
        Frame frame;
        bool got = false;
        Transport::Status st = workers_[wi].transport->RecvAsync(&frame, &got);
        if (st != Transport::Status::kOk) {
          workers_[wi].dead = true;  // orderly exit after shutdown
          workers_[wi].transport->Close();
          break;
        }
        if (!got) {
          break;
        }
        try {
          opec_support::ScopedCheckThrow capture;
          if (frame.type == FrameType::kResult) {
            opec_hw::StateReader r(frame.payload);
            ResultMsg msg = ReadResult(r, sweep_);
            RecordResult(wi, msg);
          } else if (frame.type == FrameType::kRequestWork) {
            workers_[wi].shutdown_sent = true;
            EnqueueFrame(wi, MakeFrame(FrameType::kShutdown));
          }
          // Anything else during drain is ignorable.
        } catch (const std::exception&) {
          workers_[wi].dead = true;
          workers_[wi].transport->Close();
          break;
        }
        if (workers_[wi].dead) {
          break;
        }
      }
    }
  }

  // Fold per-session counters (they survive reconnects: one entry per worker
  // id, or per connection for anonymous workers) into the stats.
  for (const std::string& key : session_order_) {
    const Session& s = sessions_[key];
    stats_.max_inflight.push_back(s.max_inflight);
    stats_.artifact_hits += s.cache.hits;
    stats_.artifact_misses += s.cache.misses;
    stats_.artifact_evictions += s.cache.evictions;
    stats_.artifact_digest_mismatches += s.cache.digest_mismatches;
  }
  return "";
}

opec_campaign::CampaignResult CampaignServer::TakeCampaignResult() {
  opec_campaign::CampaignResult result;
  result.results = std::move(job_results_);
  result.jobs_used = static_cast<int>(stats_.workers == 0 ? 1 : stats_.workers);
  result.dist = stats_;
  return result;
}

std::vector<opec_fuzz::CaseResult> CampaignServer::TakeFuzzResults() {
  return std::move(case_results_);
}

}  // namespace opec_dist
