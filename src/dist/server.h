// The campaign server (DESIGN.md §16): owns the sharded job queue, leases
// work units to connected workers, and reassembles results index-ordered.
//
// Single-threaded by construction — one poll() loop multiplexes every worker
// transport (and, optionally, a TCP accept socket). There is no shared
// mutable state with any other thread, which keeps the server trivially
// TSan-clean and makes the aggregation order a non-issue: results land in a
// pre-sized, index-addressed vector, first write wins.
//
// Fault tolerance: each issued unit carries a lease (worker + deadline).
// A worker that disconnects (EOF/error) or lets a lease expire gets its
// units requeued at the *front* of the queue, so recovery work is reissued
// before untouched work. Because every job is a pure function of its
// resolved spec, a re-executed unit reproduces byte-identical rows and the
// first-write-wins rule makes duplicate deliveries harmless — the final
// DeterministicJson is unchanged by worker count, join order, or mid-sweep
// death (tests/dist_test.cc pins all three).

#ifndef SRC_DIST_SERVER_H_
#define SRC_DIST_SERVER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/dist/cache.h"
#include "src/dist/transport.h"
#include "src/dist/wire.h"
#include "src/fuzz/oracles.h"

namespace opec_dist {

class CampaignServer {
 public:
  struct Options {
    size_t unit_size = 4;     // jobs per leased work unit
    uint64_t lease_ms = 30000;  // lease expiry; 0 = leases never expire
    uint32_t retry_ms = 20;   // kNoWork retry hint to idle workers
    std::string cache_dir;    // server-side artifact bytes ("" = in-memory)
    uint64_t cache_max_bytes = 0;
    // Job environment shipped in kWelcome / baked into resolved specs.
    bool cold_boot = false;
    std::string snapshot_dir;
    std::string trace_dir;
    uint64_t default_timeout_ms = 0;
  };

  // Campaign sweep: jobs are resolved (seed/timeout/trace path) up front, so
  // workers execute exactly what `campaign --jobs 1` would.
  CampaignServer(const opec_campaign::CampaignSpec& spec, const Options& options);
  // Fuzz sweep over seeds base_seed + [0, count).
  CampaignServer(uint64_t fuzz_base_seed, uint64_t fuzz_count, const Options& options);
  ~CampaignServer();

  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  // Adds a pre-connected worker transport (self-hosted mode, tests).
  void AddWorker(std::unique_ptr<Transport> transport);
  // Accept new TCP workers on this listening socket (not owned) during Serve.
  void set_listen_fd(int fd) { listen_fd_ = fd; }
  // Called after every recorded result row — progress lines, chaos kills.
  void set_on_progress(std::function<void(size_t done, size_t total)> cb) {
    on_progress_ = std::move(cb);
  }

  size_t total_jobs() const { return total_; }

  // Runs the poll loop until every index has a result, then shuts workers
  // down. Returns "" on success, else an error (unusable output directory,
  // every worker gone with work outstanding and no way for more to join).
  std::string Serve();

  // Valid after a successful Serve(). Campaign sweeps only; wall_ns is left 0
  // for the caller to stamp.
  opec_campaign::CampaignResult TakeCampaignResult();
  // Fuzz sweeps only, in index order.
  std::vector<opec_fuzz::CaseResult> TakeFuzzResults();

  const opec_campaign::DistStats& dist_stats() const { return stats_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Unit {
    uint64_t id = 0;
    size_t start = 0;
    size_t count = 0;
  };

  struct Lease {
    size_t worker = 0;
    Clock::time_point deadline;
  };

  struct WorkerState {
    std::unique_ptr<Transport> transport;
    std::string name;
    bool hello_done = false;
    bool dead = false;
    bool shutdown_sent = false;
    uint64_t inflight = 0;
    uint64_t max_inflight = 0;
    CacheCounters cache;  // latest cumulative sample
  };

  void BuildUnits(size_t total);
  bool HandleFrame(size_t wi, const Frame& frame);
  void SendOrKill(size_t wi, const Frame& frame);
  void KillWorker(size_t wi, const char* why);
  void RequeueWorkerUnits(size_t wi, bool expired);
  void ExpireLeases(Clock::time_point now);
  void RecordResult(size_t wi, const ResultMsg& msg);
  size_t AliveWorkers() const;
  bool Done() const { return done_count_ == total_; }

  Options options_;
  SweepKind sweep_;
  uint64_t campaign_seed_ = 0;
  std::vector<opec_campaign::JobSpec> resolved_;  // campaign sweeps
  uint64_t fuzz_base_seed_ = 0;                   // fuzz sweeps

  size_t total_ = 0;
  std::vector<Unit> units_;
  std::vector<uint64_t> pending_;  // unit ids; issued from the front
  std::unordered_map<uint64_t, Lease> leases_;

  std::vector<opec_campaign::JobResult> job_results_;
  std::vector<opec_fuzz::CaseResult> case_results_;
  std::vector<uint8_t> have_;  // per index; first write wins
  size_t done_count_ = 0;

  std::vector<WorkerState> workers_;
  int listen_fd_ = -1;
  std::function<void(size_t, size_t)> on_progress_;

  ArtifactCache cache_;
  std::unordered_map<std::string, uint64_t> artifact_keys_;  // key -> digest

  opec_campaign::DistStats stats_;
};

}  // namespace opec_dist

#endif  // SRC_DIST_SERVER_H_
