// The campaign server (DESIGN.md §16): owns the sharded job queue, leases
// work units to connected workers, and reassembles results index-ordered.
//
// Single-threaded by construction — one poll() loop multiplexes every worker
// transport (and, optionally, a TCP accept socket). There is no shared
// mutable state with any other thread, which keeps the server trivially
// TSan-clean and makes the aggregation order a non-issue: results land in a
// pre-sized, index-addressed vector, first write wins.
//
// Fleet hardening (protocol v2, wire.h):
//   * Auth: when `auth_token` is set, a hello whose token does not match is
//     hung up on before the server emits a single byte; `allow` restricts
//     TCP peers by CIDR at accept time, before any frame is read.
//   * Backpressure: every send goes through a per-peer outbox drained with
//     POLLOUT via non-blocking partial writes — a peer that stops reading
//     stalls only itself (and is killed when its outbox exceeds
//     `outbox_max_bytes`), never the fleet. Reads are equally non-blocking
//     (Transport::RecvAsync), so a peer dribbling half a frame cannot stall
//     the loop either.
//   * Reconnect-and-resume: a resumable worker (stable worker id) that loses
//     its link gets its leases *parked* rather than requeued; when it
//     reconnects, the server adopts the parked leases and re-assigns only the
//     still-unrecorded indexes under the original unit id. Parked leases
//     still expire on the normal lease clock, so a worker that never returns
//     degrades to the plain requeue path.
//   * Adaptive unit sizing: with `adaptive_units`, units are carved from the
//     pending queue to hit `target_unit_ms` of predicted work using an EWMA
//     of observed per-job wall time keyed by app×mode×engine. Sizing feeds
//     only scheduling and the Json() "dist" stats block; the recorded rows —
//     and therefore DeterministicJson() — are byte-identical to any fixed
//     unit size.
//
// Fault tolerance: each issued unit carries a lease (worker + deadline).
// A non-resumable worker that disconnects (EOF/error) or any lease that
// expires gets its units requeued at the *front* of the queue, so recovery
// work is reissued before untouched work. Because every job is a pure
// function of its resolved spec, a re-executed unit reproduces byte-identical
// rows and the first-write-wins rule makes duplicate deliveries harmless —
// the final DeterministicJson is unchanged by worker count, join order,
// mid-sweep death, or reconnects (tests/dist_test.cc pins all of these).
// A unit whose rows were all recorded by a late/duplicate delivery is erased
// silently wherever it is still tracked: it never bumps units_reissued or
// leases_expired a second time.

#ifndef SRC_DIST_SERVER_H_
#define SRC_DIST_SERVER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/dist/cache.h"
#include "src/dist/transport.h"
#include "src/dist/wire.h"
#include "src/fuzz/oracles.h"

namespace opec_dist {

class CampaignServer {
 public:
  struct Options {
    size_t unit_size = 4;       // jobs per leased work unit (fixed sizing)
    bool adaptive_units = false;  // size units from observed per-job wall time
    uint64_t target_unit_ms = 250;  // adaptive: predicted wall time per unit
    size_t max_unit_size = 64;      // adaptive: hard cap on jobs per unit
    uint64_t lease_ms = 30000;  // lease expiry; 0 = leases never expire
    uint32_t retry_ms = 20;   // kNoWork retry hint to idle workers
    std::string cache_dir;    // server-side artifact bytes ("" = in-memory)
    uint64_t cache_max_bytes = 0;
    // Fleet hardening.
    std::string auth_token;   // "" = no auth; else hellos must present it
    std::vector<Cidr> allow;  // TCP peer allow-list; empty = accept any
    uint32_t chunk_threshold = kDefaultChunkThreshold;  // artifact chunking
    uint64_t outbox_max_bytes = 128ull << 20;  // kill a peer stalled past this
    uint64_t drain_ms = 10000;  // post-sweep straggler drain deadline
    // Job environment shipped in kWelcome / baked into resolved specs.
    bool cold_boot = false;
    std::string snapshot_dir;
    std::string trace_dir;
    uint64_t default_timeout_ms = 0;
  };

  // Campaign sweep: jobs are resolved (seed/timeout/trace path) up front, so
  // workers execute exactly what `campaign --jobs 1` would.
  CampaignServer(const opec_campaign::CampaignSpec& spec, const Options& options);
  // Fuzz sweep over seeds base_seed + [0, count).
  CampaignServer(uint64_t fuzz_base_seed, uint64_t fuzz_count, const Options& options);
  ~CampaignServer();

  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  // Adds a pre-connected worker transport (self-hosted mode, tests).
  void AddWorker(std::unique_ptr<Transport> transport);
  // Accept new TCP workers on this listening socket (not owned) during Serve.
  void set_listen_fd(int fd) { listen_fd_ = fd; }
  // Called after every recorded result row — progress lines, chaos kills.
  void set_on_progress(std::function<void(size_t done, size_t total)> cb) {
    on_progress_ = std::move(cb);
  }

  size_t total_jobs() const { return total_; }

  // Runs the poll loop until every index has a result, then shuts workers
  // down. Returns "" on success, else an error (unusable output directory,
  // every worker gone with work outstanding and no way for more to join).
  std::string Serve();

  // Valid after a successful Serve(). Campaign sweeps only; wall_ns is left 0
  // for the caller to stamp.
  opec_campaign::CampaignResult TakeCampaignResult();
  // Fuzz sweeps only, in index order.
  std::vector<opec_fuzz::CaseResult> TakeFuzzResults();

  const opec_campaign::DistStats& dist_stats() const { return stats_; }

 private:
  using Clock = std::chrono::steady_clock;

  static constexpr size_t kNoWorker = static_cast<size_t>(-1);

  // A contiguous run of not-yet-issued job indexes. The pending queue is a
  // deque of spans; units are carved off the front span at issue time, which
  // is what lets the adaptive scheduler pick a fresh size per lease.
  struct Span {
    size_t start = 0;
    size_t count = 0;
  };

  struct Lease {
    size_t worker = kNoWorker;  // connection index; kNoWorker while parked
    std::string worker_id;      // non-empty for resumable holders
    bool parked = false;        // link lost; waiting for the id to return
    bool needs_resend = false;  // adopted after reconnect; re-assign remainder
    Clock::time_point deadline;
    Clock::time_point issued_at;
    size_t rows = 0;  // unrecorded jobs at issue (fuzz wall-time estimate)
  };

  struct WorkerState {
    std::unique_ptr<Transport> transport;
    std::string name;
    std::string worker_id;    // "" = anonymous (never resumed)
    std::string session_key;  // worker_id, or a per-connection key
    uint32_t version = kProtocolVersion;  // negotiated dialect
    bool resumable = false;
    bool hello_done = false;
    bool dead = false;
    bool shutdown_sent = false;
    uint64_t inflight = 0;
    // Outbox: encoded frames awaiting a writable peer; drained by POLLOUT.
    std::deque<std::vector<uint8_t>> outbox;
    size_t outbox_off = 0;    // bytes of outbox.front() already written
    uint64_t outbox_bytes = 0;
  };

  // Per-worker-id (or per-anonymous-connection) counters that survive
  // reconnects; folded into DistStats after the sweep.
  struct Session {
    uint64_t max_inflight = 0;
    CacheCounters cache;  // latest cumulative sample
  };

  void BuildQueue(size_t total);
  bool HandleFrame(size_t wi, const Frame& frame);
  bool HandleHello(size_t wi, const HelloMsg& hello);
  void EnqueueFrame(size_t wi, const Frame& frame);
  void DrainOutbox(size_t wi);
  void KillWorker(size_t wi, const char* why);
  void DropConnection(size_t wi, const char* why);
  // Returns the unit's span to the front of the pending queue — unless every
  // row is already recorded, in which case the unit is erased silently (no
  // stat double-count). Erases the lease and the issued_ entry either way.
  void RequeueUnit(uint64_t unit_id, bool expired);
  void RequeueWorkerUnits(size_t wi);
  void ParkWorkerUnits(size_t wi);
  void AdoptParkedLeases(size_t wi);
  void ExpireLeases(Clock::time_point now);
  void RecordResult(size_t wi, const ResultMsg& msg);
  bool SendAssign(size_t wi, uint64_t unit_id, const Span& span);
  // Adaptive sizing: jobs to carve off the front of `s` for one unit.
  size_t CarveCount(const Span& s) const;
  std::string SizeKey(size_t index) const;
  void NoteUnitSize(size_t carved);
  bool UnitFullyRecorded(const Span& s) const;
  size_t PendingJobs() const;
  size_t AliveWorkers() const;
  bool Done() const { return done_count_ == total_; }

  Options options_;
  SweepKind sweep_;
  uint64_t campaign_seed_ = 0;
  std::vector<opec_campaign::JobSpec> resolved_;  // campaign sweeps
  uint64_t fuzz_base_seed_ = 0;                   // fuzz sweeps

  size_t total_ = 0;
  std::deque<Span> pending_;  // un-issued spans; carved from the front
  std::unordered_map<uint64_t, Span> issued_;  // unit id -> its span
  std::unordered_map<uint64_t, Lease> leases_;
  uint64_t next_unit_id_ = 0;

  // Observed per-job wall time (ns) keyed by SizeKey(); drives CarveCount.
  std::unordered_map<std::string, double> ewma_ns_;

  std::vector<opec_campaign::JobResult> job_results_;
  std::vector<opec_fuzz::CaseResult> case_results_;
  std::vector<uint8_t> have_;  // per index; first write wins
  size_t done_count_ = 0;

  std::vector<WorkerState> workers_;
  std::unordered_set<std::string> seen_ids_;  // resumable ids that ever joined
  std::vector<std::string> session_order_;    // fold order for stats
  std::unordered_map<std::string, Session> sessions_;
  int listen_fd_ = -1;
  std::function<void(size_t, size_t)> on_progress_;

  ArtifactCache cache_;
  std::unordered_map<std::string, uint64_t> artifact_keys_;  // key -> digest

  opec_campaign::DistStats stats_;
};

}  // namespace opec_dist

#endif  // SRC_DIST_SERVER_H_
