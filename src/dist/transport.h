// Frame transports for the dist protocol (src/dist/wire.h).
//
// A Transport moves whole frames: Send() writes the 5-byte header plus the
// payload; Recv() reads exactly one frame or reports a clean error. The only
// implementation is FdTransport over a stream file descriptor — a socketpair
// end (self-hosted workers, in-process tests) or a TCP socket (remote
// workers); the server and worker code are transport-agnostic.
//
// Two I/O disciplines share one internal receive buffer:
//   - Recv() blocks until a full frame (worker side: one synchronous peer).
//   - RecvAsync() never blocks: it pulls whatever bytes are available and
//     reports a frame only when one is complete — the server's poll() loop
//     uses it so a peer that dribbles half a frame can never stall the
//     fleet. SendSome() is the matching non-blocking partial write the
//     server's per-peer outbox drains through POLLOUT.
// The buffer lives on the transport, i.e. per *connection*: a frame
// truncated by a dropped link dies with its FdTransport and can never leak
// into a successor connection from the same worker id.
//
// Error model: Recv()/RecvAsync() distinguish orderly EOF *between* frames
// (kEof — the peer hung up cleanly) from EOF *inside* a frame or a malformed
// length prefix (kError, "truncated frame" / "frame payload too large") — a
// truncated or oversized frame never hangs the reader and never allocates
// the bogus length.

#ifndef SRC_DIST_TRANSPORT_H_
#define SRC_DIST_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/dist/wire.h"

namespace opec_dist {

class Transport {
 public:
  enum class Status : uint8_t {
    kOk,
    kEof,    // peer closed between frames (orderly)
    kError,  // I/O error, truncated frame, or oversized length prefix
  };

  virtual ~Transport() = default;

  virtual Status Send(const Frame& frame) = 0;
  virtual Status Recv(Frame* frame) = 0;
  // Non-blocking receive: drains available bytes into the internal buffer
  // and extracts at most one complete frame. Sets *got=true when `frame` was
  // filled; kOk with *got=false means "no complete frame yet". Callers loop
  // until *got stays false to consume back-to-back frames.
  virtual Status RecvAsync(Frame* frame, bool* got) = 0;
  // Non-blocking partial write for outbox draining: returns bytes written
  // (possibly 0 when the peer's pipe is full), or -1 on error (error() set).
  virtual int SendSome(const uint8_t* data, size_t n) = 0;
  virtual void Close() = 0;
  // Last kError description, for logs.
  virtual const std::string& error() const = 0;
  // Underlying fd for poll()-based multiplexing (-1 once closed).
  virtual int fd() const = 0;
};

class FdTransport : public Transport {
 public:
  // Takes ownership of `fd`. `max_payload` exists so tests can exercise the
  // oversized-frame rejection without allocating 64 MiB.
  explicit FdTransport(int fd, uint32_t max_payload = kMaxFramePayload);
  ~FdTransport() override;

  FdTransport(const FdTransport&) = delete;
  FdTransport& operator=(const FdTransport&) = delete;

  Status Send(const Frame& frame) override;
  Status Recv(Frame* frame) override;
  Status RecvAsync(Frame* frame, bool* got) override;
  int SendSome(const uint8_t* data, size_t n) override;
  void Close() override;
  const std::string& error() const override { return error_; }
  int fd() const override { return fd_; }

 private:
  // Full write with EINTR retry (blocking sends from workers).
  bool WriteAll(const uint8_t* data, size_t n);
  // Appends available bytes to rbuf_. Returns 1 if bytes arrived, 0 on EOF,
  // -1 on error, -2 if a non-blocking read would block.
  int FillBuffer(bool blocking);
  // Extracts one complete frame from rbuf_ if present: 1 = frame filled,
  // 0 = need more bytes, -1 = malformed (error_ set).
  int TryExtract(Frame* frame);

  int fd_ = -1;
  uint32_t max_payload_;
  std::string error_;
  std::vector<uint8_t> rbuf_;  // unconsumed received bytes
  size_t rpos_ = 0;            // consumed prefix of rbuf_
};

// A connected socketpair wrapped as two transports: {server side, worker
// side}. Either end may move to another thread or survive a fork (each
// process closes the other end).
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> LocalPair();

// IPv4 allow-listing for --listen. addr/bits in host byte order;
// "a.b.c.d" (exact host) and "a.b.c.d/nn" accepted.
struct Cidr {
  uint32_t addr = 0;
  int bits = 32;
};

// Parses a comma-separated CIDR list. Returns false (and sets *error) on the
// first malformed entry.
bool ParseCidrList(const std::string& list, std::vector<Cidr>* out, std::string* error);
// True when `ip` (host byte order) matches any entry. An empty list matches
// everything (no restriction configured).
bool CidrMatch(const std::vector<Cidr>& allow, uint32_t ip);

// TCP plumbing for --serve / --connect. All return -1 and set `error` on
// failure. `host_port` is "host:port". Port 0 binds an ephemeral port —
// recover it with TcpBoundPort.
int TcpListen(uint16_t port, std::string* error);
// `peer_ip` (optional) receives the connecting peer's IPv4 address in host
// byte order, for allow-list checks.
int TcpAccept(int listen_fd, std::string* error, uint32_t* peer_ip = nullptr);
int TcpConnect(const std::string& host_port, std::string* error);
// The locally bound port of a listening socket (0 on failure).
uint16_t TcpBoundPort(int fd);

}  // namespace opec_dist

#endif  // SRC_DIST_TRANSPORT_H_
