// Blocking frame transports for the dist protocol (src/dist/wire.h).
//
// A Transport moves whole frames: Send() writes the 5-byte header plus the
// payload; Recv() reads exactly one frame or reports a clean error. The only
// implementation is FdTransport over a stream file descriptor — a socketpair
// end (self-hosted workers, in-process tests) or a TCP socket (remote
// workers); the server and worker code are transport-agnostic.
//
// Error model: Recv() distinguishes orderly EOF *between* frames (kEof — the
// peer hung up cleanly) from EOF *inside* a frame or a malformed length
// prefix (kError, "truncated frame" / "frame payload too large") — a
// truncated or oversized frame never hangs the reader and never allocates
// the bogus length.

#ifndef SRC_DIST_TRANSPORT_H_
#define SRC_DIST_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "src/dist/wire.h"

namespace opec_dist {

class Transport {
 public:
  enum class Status : uint8_t {
    kOk,
    kEof,    // peer closed between frames (orderly)
    kError,  // I/O error, truncated frame, or oversized length prefix
  };

  virtual ~Transport() = default;

  virtual Status Send(const Frame& frame) = 0;
  virtual Status Recv(Frame* frame) = 0;
  virtual void Close() = 0;
  // Last kError description, for logs.
  virtual const std::string& error() const = 0;
  // Underlying fd for poll()-based multiplexing (-1 once closed).
  virtual int fd() const = 0;
};

class FdTransport : public Transport {
 public:
  // Takes ownership of `fd`. `max_payload` exists so tests can exercise the
  // oversized-frame rejection without allocating 64 MiB.
  explicit FdTransport(int fd, uint32_t max_payload = kMaxFramePayload);
  ~FdTransport() override;

  FdTransport(const FdTransport&) = delete;
  FdTransport& operator=(const FdTransport&) = delete;

  Status Send(const Frame& frame) override;
  Status Recv(Frame* frame) override;
  void Close() override;
  const std::string& error() const override { return error_; }
  int fd() const override { return fd_; }

 private:
  // Full read/write with EINTR retry. ReadAll returns 0 on clean EOF before
  // any byte, 1 on success, -1 on error/short read.
  bool WriteAll(const uint8_t* data, size_t n);
  int ReadAll(uint8_t* data, size_t n);

  int fd_ = -1;
  uint32_t max_payload_;
  std::string error_;
};

// A connected socketpair wrapped as two transports: {server side, worker
// side}. Either end may move to another thread or survive a fork (each
// process closes the other end).
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> LocalPair();

// TCP plumbing for --serve / --connect. All return -1 and set `error` on
// failure. `host_port` is "host:port".
int TcpListen(uint16_t port, std::string* error);
int TcpAccept(int listen_fd, std::string* error);
int TcpConnect(const std::string& host_port, std::string* error);

}  // namespace opec_dist

#endif  // SRC_DIST_TRANSPORT_H_
