// campaignd: the distributed campaign service CLI (DESIGN.md §16).
//
// Three roles, one binary:
//   campaignd --workers N [sweep flags]        self-hosted: fork N local
//                                              workers over socketpairs, run
//                                              the server in this process
//   campaignd --serve --listen PORT [sweep]    TCP server; workers join live
//   campaignd --worker --connect HOST:PORT     one worker, any machine
//
// Sweep flags mirror the in-process `campaign` CLI (--spec/--apps/--modes/
// --engine/--rv/--fault-sweep/--fault-class/--seed/--timeout-ms/
// --report-json/--deterministic/--trace-dir/--snapshot-dir/--cold-boot), or
// --fuzz-count N [--fuzz-seed S] for a differential-fuzz sweep. The summary,
// reports and stdout are byte-for-byte what `campaign` / `fuzz` print for the
// same sweep — CI cmp(1)s them (the scaling harness in EXPERIMENTS.md §16).
//
// Dist-specific knobs: --unit-size (jobs per lease), --lease-ms (expiry),
// --cache-dir (content-addressed artifact cache; share one directory between
// local workers to get warm-start cache hits), --chaos-kill-after R
// (self-hosted only: SIGKILL one worker after R results — the worker-crash
// re-issue smoke test).
//
// Exit status: 0 all jobs ok / no divergences, 1 otherwise, 2 usage error.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/all_apps.h"
#include "src/campaign/campaign.h"
#include "src/dist/server.h"
#include "src/dist/transport.h"
#include "src/dist/worker.h"
#include "src/fuzz/oracles.h"
#include "src/rv/monitors.h"

namespace {

using opec_campaign::CampaignResult;
using opec_campaign::CampaignSpec;
using opec_campaign::FaultClass;
using opec_campaign::Outcome;
using opec_dist::CampaignServer;

int Usage() {
  std::fprintf(
      stderr,
      "usage: campaignd --workers N [sweep flags]            (self-hosted)\n"
      "       campaignd --serve --listen PORT [sweep flags]  (TCP server)\n"
      "       campaignd --worker --connect HOST:PORT         (TCP worker)\n"
      "  sweep:  [--spec FILE] [--apps a,b|all] [--modes opec|vanilla|both]\n"
      "          [--engine interp|bytecode] [--rv on|off|report]\n"
      "          [--fault-sweep N] [--fault-class CLASS] [--seed S]\n"
      "          [--timeout-ms T] [--report-json FILE] [--deterministic]\n"
      "          [--trace-dir DIR] [--snapshot-dir DIR] [--cold-boot]\n"
      "          | --fuzz-count N [--fuzz-seed S]\n"
      "  dist:   [--unit-size N|auto] [--target-unit-ms T] [--lease-ms T]\n"
      "          [--cache-dir DIR] [--auth-token TOK] [--allow CIDR,...]\n"
      "          [--chaos-kill-after R] [--chaos-stop-after R]\n"
      "  worker: [--worker-id ID] [--reconnect N] [--reconnect-delay-ms T]\n"
      "          [--auth-token TOK] [--chaos-drop-after J]\n");
  return 2;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

// Full-string u64 parse for seeds/durations (counts go through
// opec_bench::ParseCount, which also enforces bounds).
bool ParseU64Flag(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || std::strchr(s, '-') != nullptr) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseFaultClass(const std::string& s, FaultClass* out) {
  if (s == "any") {
    *out = FaultClass::kAny;
  } else if (s == "stack-bit-flip") {
    *out = FaultClass::kStackBitFlip;
  } else if (s == "shadow-bit-flip") {
    *out = FaultClass::kShadowBitFlip;
  } else if (s == "svc-arg") {
    *out = FaultClass::kSvcArgCorrupt;
  } else if (s == "icall-forge") {
    *out = FaultClass::kIcallForge;
  } else {
    return false;
  }
  return true;
}

struct Child {
  pid_t pid = -1;
  bool alive = false;
};

// Prints the campaign summary exactly as `campaign` does (bench/
// campaign_main.cc) — the two CLIs must stay cmp-identical on stdout for the
// same sweep, modulo the wall-clock line both format from their own timing.
int ReportCampaign(const CampaignResult& result, const std::string& rv_arg,
                   const std::string& report_path, bool deterministic) {
  std::printf("campaign: %zu jobs on %d worker(s), wall %.2f ms (serial %.2f ms, %.2fx)\n",
              result.results.size(), result.jobs_used, result.wall_ns / 1e6,
              result.SerialWallNs() / 1e6,
              result.wall_ns > 0
                  ? static_cast<double>(result.SerialWallNs()) /
                        static_cast<double>(result.wall_ns)
                  : 0.0);
  for (int o = 0; o <= static_cast<int>(Outcome::kRvViolation); ++o) {
    size_t n = result.CountOutcome(static_cast<Outcome>(o));
    if (n > 0) {
      std::printf("  %-18s %zu\n", opec_campaign::OutcomeName(static_cast<Outcome>(o)), n);
    }
  }
  bool have_faults = false;
  for (const opec_campaign::JobResult& r : result.results) {
    if (r.spec.kind == opec_campaign::JobKind::kFault) {
      have_faults = true;
    }
    if (!r.ok) {
      std::printf("  job %zu [%s %s]: %s — %s\n", r.index, r.spec.app.c_str(),
                  opec_campaign::JobKindName(r.spec.kind),
                  opec_campaign::OutcomeName(r.outcome), r.detail.c_str());
    }
  }
  if (have_faults) {
    std::fputs(result.FaultMatrix().c_str(), stdout);
  }
  if (rv_arg == "report") {
    const std::vector<std::string>& names = opec_rv::StandardMonitorNames();
    std::vector<unsigned long long> by_automaton(names.size(), 0);
    unsigned long long rv_jobs = 0, states = 0, violations = 0;
    for (const opec_campaign::JobResult& r : result.results) {
      if (!r.spec.rv) {
        continue;
      }
      ++rv_jobs;
      states += r.rv_states;
      violations += r.rv_violations;
      for (size_t a = 0; a < r.rv_by_automaton.size() && a < by_automaton.size(); ++a) {
        by_automaton[a] += r.rv_by_automaton[a];
      }
    }
    std::printf("RV report (%llu job(s)): states-visited=%llu violations=%llu\n", rv_jobs,
                states, violations);
    for (size_t a = 0; a < names.size(); ++a) {
      std::printf("  %-20s violations=%llu\n", names[a].c_str(), by_automaton[a]);
    }
  }
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out.good()) {
      std::fprintf(stderr, "campaignd: cannot write %s\n", report_path.c_str());
      return 2;
    }
    out << (deterministic ? result.DeterministicJson() : result.Json());
    std::printf("wrote %s\n", report_path.c_str());
  }
  return result.AllOk() ? 0 : 1;
}

// Prints the fuzz sweep exactly as the `fuzz` CLI does (no shrink/corpus in
// distributed mode).
int ReportFuzz(const std::vector<opec_fuzz::CaseResult>& results, uint64_t count) {
  size_t diverging_cases = 0;
  size_t divergences = 0;
  for (const opec_fuzz::CaseResult& result : results) {
    std::printf("%s\n", result.digest.c_str());
    if (result.divergences.empty()) {
      continue;
    }
    ++diverging_cases;
    divergences += result.divergences.size();
    std::printf("  program: %s\n", result.summary.c_str());
    for (const opec_fuzz::Divergence& d : result.divergences) {
      std::printf("  [%s] %s\n", opec_fuzz::OracleName(d.oracle), d.detail.c_str());
    }
  }
  std::printf("fuzz: %llu cases, %zu diverging, %zu divergences\n",
              static_cast<unsigned long long>(count), diverging_cases, divergences);
  return divergences == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int workers = 0;
  bool serve = false;
  bool worker = false;
  int listen_port = 0;
  std::string connect_addr;
  std::string cache_dir;
  int unit_size = 4;
  bool unit_auto = false;
  int target_unit_ms = 250;
  int lease_ms = 30000;
  int chaos_kill_after = 0;
  int chaos_stop_after = 0;
  std::string auth_token;
  std::string allow_arg;
  std::string worker_id;
  int reconnect = 0;
  int reconnect_delay_ms = 100;
  int chaos_drop_after = 0;

  std::string spec_path;
  std::string apps_arg = "all";
  std::string modes_arg = "both";
  opec_apps::EngineKind engine = opec_apps::EngineKind::kInterp;
  std::string rv_arg = "on";
  size_t fault_sweep = 0;
  FaultClass fault_class = FaultClass::kAny;
  uint64_t seed = 1;
  uint64_t timeout_ms = 0;
  std::string report_path;
  bool deterministic = false;
  std::string trace_dir;
  std::string snapshot_dir;
  bool cold_boot = false;
  int fuzz_count = 0;
  uint64_t fuzz_seed = 1;

  for (int i = 1; i < argc; ++i) {
    // Flags accept both `--flag value` and `--flag=value` (the campaign CLI
    // contract; every numeric flag rejects junk with exit 2 and a message).
    std::string arg = argv[i];
    std::string value;
    size_t eq = arg.find('=');
    bool has_value = eq != std::string::npos;
    if (has_value) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    auto next = [&]() -> const char* {
      if (has_value) {
        return value.c_str();
      }
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr || !opec_bench::ParseCount(v, 1, 256, &workers)) {
        std::fprintf(stderr, "invalid --workers '%s'; expected an integer in [1, 256]\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--serve") {
      serve = true;
    } else if (arg == "--worker") {
      worker = true;
    } else if (arg == "--listen") {
      const char* v = next();
      if (v == nullptr || !opec_bench::ParseCount(v, 1, 65535, &listen_port)) {
        std::fprintf(stderr, "invalid --listen '%s'; expected a port in [1, 65535]\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--connect") {
      const char* v = next();
      if (v == nullptr) return Usage();
      connect_addr = v;
    } else if (arg == "--cache-dir") {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "invalid --cache-dir: expected a directory path\n");
        return Usage();
      }
      cache_dir = v;
    } else if (arg == "--unit-size") {
      const char* v = next();
      if (v != nullptr && std::strcmp(v, "auto") == 0) {
        unit_auto = true;
      } else if (v == nullptr || !opec_bench::ParseCount(v, 1, 100000, &unit_size)) {
        std::fprintf(stderr,
                     "invalid --unit-size '%s'; expected an integer in [1, 100000] or auto\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--target-unit-ms") {
      const char* v = next();
      if (v == nullptr || !opec_bench::ParseCount(v, 1, 600000, &target_unit_ms)) {
        std::fprintf(stderr,
                     "invalid --target-unit-ms '%s'; expected an integer in [1, 600000]\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--auth-token") {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "invalid --auth-token: expected a non-empty token\n");
        return Usage();
      }
      auth_token = v;
    } else if (arg == "--allow") {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "invalid --allow: expected a comma-separated CIDR list\n");
        return Usage();
      }
      allow_arg = v;
    } else if (arg == "--worker-id") {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "invalid --worker-id: expected a non-empty id\n");
        return Usage();
      }
      worker_id = v;
    } else if (arg == "--reconnect") {
      const char* v = next();
      if (v == nullptr || !opec_bench::ParseCount(v, 0, 1000000, &reconnect)) {
        std::fprintf(stderr, "invalid --reconnect '%s'; expected an integer >= 0\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--reconnect-delay-ms") {
      const char* v = next();
      if (v == nullptr || !opec_bench::ParseCount(v, 0, 3600000, &reconnect_delay_ms)) {
        std::fprintf(stderr, "invalid --reconnect-delay-ms '%s'; expected an integer >= 0\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--chaos-drop-after") {
      const char* v = next();
      if (v == nullptr || !opec_bench::ParseCount(v, 1, 1000000, &chaos_drop_after)) {
        std::fprintf(stderr, "invalid --chaos-drop-after '%s'; expected an integer >= 1\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--chaos-stop-after") {
      const char* v = next();
      if (v == nullptr || !opec_bench::ParseCount(v, 1, 1000000, &chaos_stop_after)) {
        std::fprintf(stderr, "invalid --chaos-stop-after '%s'; expected an integer >= 1\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--lease-ms") {
      const char* v = next();
      if (v == nullptr || !opec_bench::ParseCount(v, 1, 3600000, &lease_ms)) {
        std::fprintf(stderr, "invalid --lease-ms '%s'; expected an integer in [1, 3600000]\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--chaos-kill-after") {
      const char* v = next();
      if (v == nullptr || !opec_bench::ParseCount(v, 1, 1000000, &chaos_kill_after)) {
        std::fprintf(stderr,
                     "invalid --chaos-kill-after '%s'; expected an integer >= 1\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--fuzz-count") {
      const char* v = next();
      if (v == nullptr || !opec_bench::ParseCount(v, 1, 1000000, &fuzz_count)) {
        std::fprintf(stderr, "invalid --fuzz-count '%s'; expected an integer >= 1\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--fuzz-seed") {
      const char* v = next();
      if (v == nullptr || !ParseU64Flag(v, &fuzz_seed)) {
        std::fprintf(stderr, "invalid --fuzz-seed '%s'; expected an unsigned integer\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--spec") {
      const char* v = next();
      if (v == nullptr) return Usage();
      spec_path = v;
    } else if (arg == "--apps") {
      const char* v = next();
      if (v == nullptr) return Usage();
      apps_arg = v;
    } else if (arg == "--modes") {
      const char* v = next();
      if (v == nullptr) return Usage();
      modes_arg = v;
    } else if (arg == "--engine") {
      const char* v = next();
      if (v != nullptr && std::strcmp(v, "interp") == 0) {
        engine = opec_apps::EngineKind::kInterp;
      } else if (v != nullptr && std::strcmp(v, "bytecode") == 0) {
        engine = opec_apps::EngineKind::kBytecode;
      } else {
        std::fprintf(stderr, "invalid --engine '%s'; valid tiers are: interp bytecode\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--rv") {
      const char* v = next();
      if (v == nullptr || (std::strcmp(v, "on") != 0 && std::strcmp(v, "off") != 0 &&
                           std::strcmp(v, "report") != 0)) {
        std::fprintf(stderr, "invalid --rv '%s'; valid settings are: on off report\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
      rv_arg = v;
    } else if (arg == "--fault-sweep") {
      const char* v = next();
      int n = 0;
      if (v == nullptr || !opec_bench::ParseCount(v, 1, 1000000, &n)) {
        std::fprintf(stderr, "invalid --fault-sweep '%s'; expected an integer >= 1\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
      fault_sweep = static_cast<size_t>(n);
    } else if (arg == "--fault-class") {
      const char* v = next();
      if (v == nullptr || !ParseFaultClass(v, &fault_class)) return Usage();
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr || !ParseU64Flag(v, &seed)) {
        std::fprintf(stderr, "invalid --seed '%s'; expected an unsigned integer\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr || !ParseU64Flag(v, &timeout_ms)) {
        std::fprintf(stderr, "invalid --timeout-ms '%s'; expected an unsigned integer\n",
                     v == nullptr ? "" : v);
        return Usage();
      }
    } else if (arg == "--report-json") {
      const char* v = next();
      if (v == nullptr) return Usage();
      report_path = v;
    } else if (arg == "--deterministic") {
      deterministic = true;
    } else if (arg == "--trace-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      trace_dir = v;
    } else if (arg == "--snapshot-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      snapshot_dir = v;
    } else if (arg == "--cold-boot") {
      cold_boot = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return Usage();
    }
  }

  // --- TCP worker role: connect and serve jobs until shutdown. -------------
  if (worker) {
    if (connect_addr.empty()) {
      std::fprintf(stderr, "campaignd: --worker requires --connect HOST:PORT\n");
      return Usage();
    }
    opec_dist::WorkerOptions options;
    options.name = worker_id.empty() ? "tcp-worker" : worker_id;
    options.cache_dir = cache_dir;
    options.token = auth_token;
    options.worker_id = worker_id;
    options.reconnect_max = static_cast<uint32_t>(reconnect);
    options.reconnect_delay_ms = static_cast<uint32_t>(reconnect_delay_ms);
    options.chaos_drop_after = static_cast<uint64_t>(chaos_drop_after);
    auto connect = [&]() -> std::unique_ptr<opec_dist::Transport> {
      std::string cerr_msg;
      int fd = opec_dist::TcpConnect(connect_addr, &cerr_msg);
      if (fd < 0) {
        std::fprintf(stderr, "campaignd: %s\n", cerr_msg.c_str());
        return nullptr;
      }
      return std::make_unique<opec_dist::FdTransport>(fd);
    };
    std::string err = opec_dist::RunWorkerLoop(connect, options);
    if (!err.empty()) {
      std::fprintf(stderr, "campaignd: worker: %s\n", err.c_str());
      return 2;
    }
    return 0;
  }

  if (!serve && workers == 0) {
    std::fprintf(stderr, "campaignd: need --workers N, --serve, or --worker\n");
    return Usage();
  }
  if (serve && listen_port == 0) {
    std::fprintf(stderr, "campaignd: --serve requires --listen PORT\n");
    return Usage();
  }

  // --- Build the sweep (exactly as the `campaign` CLI does). ---------------
  bool fuzz_sweep = fuzz_count > 0;
  CampaignSpec spec;
  if (!fuzz_sweep) {
    std::vector<std::string> apps;
    if (apps_arg == "all") {
      for (const opec_apps::AppFactory& factory : opec_apps::AllApps()) {
        apps.push_back(factory.name);
      }
    } else {
      apps = SplitCommas(apps_arg);
    }
    std::vector<opec_apps::BuildMode> modes;
    if (modes_arg == "opec") {
      modes = {opec_apps::BuildMode::kOpec};
    } else if (modes_arg == "vanilla") {
      modes = {opec_apps::BuildMode::kVanilla};
    } else if (modes_arg == "both") {
      modes = {opec_apps::BuildMode::kVanilla, opec_apps::BuildMode::kOpec};
    } else {
      return Usage();
    }
    spec.seed = seed;
    spec.timeout_ms = timeout_ms;
    if (!spec_path.empty()) {
      std::string err = spec.ParseFile(spec_path);
      if (!err.empty()) {
        std::fprintf(stderr, "campaignd: %s\n", err.c_str());
        return 2;
      }
    }
    if (fault_sweep > 0) {
      spec.AddFaultSweep(apps, fault_sweep, fault_class);
    }
    if (spec.jobs.empty()) {
      spec.AddScenarioMatrix(apps, modes);
    }
    for (opec_campaign::JobSpec& job : spec.jobs) {
      job.engine = engine;
      job.rv = rv_arg != "off";
    }
  }

  CampaignServer::Options options;
  options.unit_size = static_cast<size_t>(unit_size);
  options.adaptive_units = unit_auto;
  options.target_unit_ms = static_cast<uint64_t>(target_unit_ms);
  options.lease_ms = static_cast<uint64_t>(lease_ms);
  options.cache_dir = cache_dir;
  options.auth_token = auth_token;
  options.cold_boot = cold_boot;
  options.snapshot_dir = snapshot_dir;
  options.trace_dir = trace_dir;
  options.default_timeout_ms = timeout_ms;
  if (!allow_arg.empty()) {
    std::string cidr_err;
    if (!opec_dist::ParseCidrList(allow_arg, &options.allow, &cidr_err)) {
      std::fprintf(stderr, "campaignd: --allow: %s\n", cidr_err.c_str());
      return Usage();
    }
  }

  std::unique_ptr<CampaignServer> server;
  if (fuzz_sweep) {
    server = std::make_unique<CampaignServer>(fuzz_seed, static_cast<uint64_t>(fuzz_count),
                                              options);
  } else {
    server = std::make_unique<CampaignServer>(spec, options);
  }

  int listen_fd = -1;
  if (serve) {
    std::string err;
    listen_fd = opec_dist::TcpListen(static_cast<uint16_t>(listen_port), &err);
    if (listen_fd < 0) {
      std::fprintf(stderr, "campaignd: %s\n", err.c_str());
      return 2;
    }
    server->set_listen_fd(listen_fd);
    std::fprintf(stderr, "campaignd: serving %zu jobs on port %d\n", server->total_jobs(),
                 listen_port);
  }

  // --- Self-hosted workers: fork before any thread exists (the server is
  // poll-based and threadless, so the children inherit a clean process).
  std::vector<Child> children;
  if (workers > 0) {
    // All pairs first, then fork: each child closes every fd except its own
    // worker end, so no child holds another channel open past its death.
    std::vector<std::pair<std::unique_ptr<opec_dist::Transport>,
                          std::unique_ptr<opec_dist::Transport>>>
        pairs;
    for (int i = 0; i < workers; ++i) {
      auto pair = opec_dist::LocalPair();
      if (pair.first == nullptr) {
        std::fprintf(stderr, "campaignd: socketpair failed\n");
        return 2;
      }
      pairs.push_back(std::move(pair));
    }
    std::fflush(stdout);
    std::fflush(stderr);
    for (int i = 0; i < workers; ++i) {
      pid_t pid = ::fork();
      if (pid < 0) {
        std::fprintf(stderr, "campaignd: fork: %s\n", std::strerror(errno));
        return 2;
      }
      if (pid == 0) {
        // Child: keep only our worker end.
        for (int j = 0; j < workers; ++j) {
          pairs[static_cast<size_t>(j)].first->Close();
          if (j != i) {
            pairs[static_cast<size_t>(j)].second->Close();
          }
        }
        if (listen_fd >= 0) {
          ::close(listen_fd);
        }
        opec_dist::WorkerOptions wopts;
        wopts.name = "w" + std::to_string(i);
        wopts.cache_dir = cache_dir;
        std::string err =
            opec_dist::RunWorker(*pairs[static_cast<size_t>(i)].second, wopts);
        if (!err.empty()) {
          std::fprintf(stderr, "campaignd: %s: %s\n", wopts.name.c_str(), err.c_str());
          std::fflush(stderr);
          ::_exit(1);
        }
        ::_exit(0);
      }
      Child c;
      c.pid = pid;
      c.alive = true;
      children.push_back(c);
      pairs[static_cast<size_t>(i)].second->Close();  // parent keeps server end
    }
    for (int i = 0; i < workers; ++i) {
      server->AddWorker(std::move(pairs[static_cast<size_t>(i)].first));
    }
  }

  bool chaos_fired = false;
  pid_t stopped_pid = -1;
  server->set_on_progress([&](size_t done, size_t total) {
    if (chaos_kill_after > 0 && !chaos_fired &&
        done >= static_cast<size_t>(chaos_kill_after)) {
      for (Child& c : children) {
        if (c.alive) {
          std::fprintf(stderr, "campaignd: chaos: killing worker pid %d after %zu/%zu\n",
                       static_cast<int>(c.pid), done, total);
          ::kill(c.pid, SIGKILL);
          chaos_fired = true;
          break;
        }
      }
    }
    if (chaos_stop_after > 0 && !chaos_fired &&
        done >= static_cast<size_t>(chaos_stop_after)) {
      for (Child& c : children) {
        if (c.alive) {
          std::fprintf(stderr, "campaignd: chaos: stopping worker pid %d after %zu/%zu\n",
                       static_cast<int>(c.pid), done, total);
          ::kill(c.pid, SIGSTOP);
          stopped_pid = c.pid;
          chaos_fired = true;
          break;
        }
      }
    }
    // Resume the stalled worker once the sweep is done: it delivers its stale
    // unit (a late, duplicate result — first write wins) and exits on the
    // shutdown frame, so the drain phase and waitpid() stay clean.
    if (stopped_pid >= 0 && done == total) {
      std::fprintf(stderr, "campaignd: chaos: resuming worker pid %d\n",
                   static_cast<int>(stopped_pid));
      ::kill(stopped_pid, SIGCONT);
      stopped_pid = -1;
    }
  });

  auto t0 = std::chrono::steady_clock::now();
  std::string err = server->Serve();
  auto t1 = std::chrono::steady_clock::now();
  if (listen_fd >= 0) {
    ::close(listen_fd);
  }
  if (stopped_pid >= 0) {
    // Belt and braces: never leave a child frozen if the sweep errored out
    // before the resume fired.
    ::kill(stopped_pid, SIGCONT);
    stopped_pid = -1;
  }
  for (Child& c : children) {
    if (c.alive) {
      int status = 0;
      ::waitpid(c.pid, &status, 0);
      c.alive = false;
    }
  }
  if (!err.empty()) {
    std::fprintf(stderr, "campaignd: %s\n", err.c_str());
    return 2;
  }

  if (fuzz_sweep) {
    return ReportFuzz(server->TakeFuzzResults(), static_cast<uint64_t>(fuzz_count));
  }
  CampaignResult result = server->TakeCampaignResult();
  result.wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  return ReportCampaign(result, rv_arg, report_path, deterministic);
}
