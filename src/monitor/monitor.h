// OPEC-Monitor (Section 5): the privileged reference monitor.
//
// Responsibilities, mapped to the paper:
//   * Initialization (5.1): initialize every operation data section's shadow
//     copies, set up the fixed MPU regions, enter the default (main)
//     operation, drop privilege.
//   * Resource isolation (5.2): per-operation MPU configuration; stack
//     protection via sub-region disabling and argument relocation; peripheral
//     MPU-region virtualization (round-robin over regions 4..7, driven by
//     MemManage faults); load/store emulation for core peripherals (driven by
//     BusFaults on unprivileged PPB accesses).
//   * Operation switch (5.3): triggered by the SVCs at instrumented call
//     sites; synchronizes shared shadow copies through the public data
//     section with sanitization, updates the relocation table, redirects
//     pointer fields into the new operation's shadows, and saves/restores the
//     operation context.

#ifndef SRC_MONITOR_MONITOR_H_
#define SRC_MONITOR_MONITOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/compiler/policy.h"
#include "src/hw/machine.h"
#include "src/hw/soc.h"
#include "src/rt/engine.h"
#include "src/rt/supervisor.h"

namespace opec_monitor {

struct MonitorStats {
  uint64_t operation_switches = 0;      // enter + exit pairs count as 2
  uint64_t synced_bytes = 0;            // shadow <-> public copies
  uint64_t relocated_stack_bytes = 0;
  uint64_t virtualization_faults = 0;   // peripheral MPU demand-maps
  uint64_t emulated_core_accesses = 0;  // PPB load/store emulations
  uint64_t pointer_redirections = 0;
  uint64_t sanitization_checks = 0;
};

// Cycle costs of monitor work, charged to the machine (the monitor runs on
// the same core as the application).
struct MonitorCosts {
  uint64_t switch_overhead = 100;   // exception entry, context save, MPU writes
  uint64_t per_word_copy = 1;       // ldm/stm burst copy, per 4 bytes
  uint64_t mpu_region_write = 12;   // one region reconfiguration
  uint64_t fault_entry = 60;        // MemManage/BusFault entry + decode
  uint64_t emulation = 30;          // core-peripheral load/store emulation
};

class Monitor : public opec_rt::Supervisor {
 public:
  Monitor(opec_hw::Machine& machine, const opec_compiler::Policy& policy,
          const opec_hw::SocDescription& soc);

  // --- opec_rt::Supervisor ---
  void OnProgramStart(opec_rt::EngineControl* engine) override;
  void OnProgramEnd() override;
  bool OnOperationEnter(int op_id, std::vector<uint32_t>& args) override;
  bool OnOperationExit(int op_id) override;
  bool OnMemFault(uint32_t addr, opec_hw::AccessKind kind) override;
  bool OnBusFault(uint32_t addr, uint32_t size, opec_hw::AccessKind kind, uint32_t write_value,
                  uint32_t* read_value) override;

  const MonitorStats& stats() const { return stats_; }
  const std::string& last_violation() const { return last_violation_; }
  int current_operation() const;

  // Snapshot support (DESIGN.md §13): the full operation-switch bookkeeping —
  // context stack (saved SP/SRD/peripheral regions/relocation entries per
  // nested operation), the active stack-protection SRD, the peripheral
  // round-robin cursor and the statistics counters. The policy itself is
  // immutable compile output and is not serialized; LoadState therefore only
  // restores state into a monitor built from the same compile.
  void SaveState(opec_hw::StateWriter& w) const;
  void LoadState(opec_hw::StateReader& r);

 private:
  struct StackReloc {
    uint32_t original = 0;  // pointer into the previous operation's stack
    uint32_t copy = 0;      // relocated copy on the new operation's stack
    uint32_t size = 0;
  };
  // Saved context of the *previous* operation, restored on exit (5.3).
  struct OpContext {
    int op_id = -1;                // the operation being entered
    int previous_op_id = -1;       // whose context we saved
    uint32_t saved_sp = 0;
    uint8_t saved_srd = 0;
    std::array<opec_hw::MpuRegionConfig, 4> saved_periph{};
    opec_hw::MpuRegionConfig saved_section{};
    int saved_rr = 0;
    std::vector<StackReloc> relocs;
  };

  const opec_compiler::OperationPolicy& Op(int id) const;

  // Privileged memory helpers (charge monitor cycles).
  uint32_t PrivRead(uint32_t addr, uint32_t size);
  void PrivWrite(uint32_t addr, uint32_t size, uint32_t value);
  void CopyBytes(uint32_t src, uint32_t dst, uint32_t n);

  // Shadow synchronization (Figure 7). Returns false on sanitization failure.
  bool WriteBackShadows(int op_id);
  void CopyInShadows(int op_id);
  void UpdateRelocTable(int op_id);
  void RedirectPointerFields(int op_id);
  // Resolves an address that points at (public or shadow) storage of an
  // external variable; returns the variable index and offset, or -1.
  int ResolveExternalStorage(uint32_t addr, uint32_t* offset) const;

  void ConfigureMpuForOperation(int op_id, uint8_t srd);
  void ApplyStackSrd(uint8_t srd);

  bool Sanitize(const opec_compiler::ExternalVar& ev, uint32_t shadow_addr);

  opec_hw::Machine& machine_;
  const opec_compiler::Policy& policy_;
  const opec_hw::SocDescription& soc_;
  opec_rt::EngineControl* engine_ = nullptr;

  std::vector<OpContext> context_stack_;
  uint8_t current_srd_ = 0;
  int periph_rr_ = 0;  // round-robin cursor over MPU regions 4..7

  MonitorStats stats_;
  MonitorCosts costs_;
  std::string last_violation_;
};

}  // namespace opec_monitor

#endif  // SRC_MONITOR_MONITOR_H_
