#include "src/monitor/monitor.h"

#include "src/obs/event.h"
#include "src/support/check.h"
#include "src/support/text.h"

namespace opec_monitor {

using opec_compiler::ExternalVar;
using opec_compiler::OperationPolicy;
using opec_compiler::PeriphRegion;
using opec_compiler::Policy;
using opec_hw::AccessKind;
using opec_hw::AccessPerm;
using opec_hw::AccessResult;
using opec_hw::MpuRegionConfig;

Monitor::Monitor(opec_hw::Machine& machine, const Policy& policy,
                 const opec_hw::SocDescription& soc)
    : machine_(machine), policy_(policy), soc_(soc) {}

const OperationPolicy& Monitor::Op(int id) const {
  OPEC_CHECK(id >= 0 && static_cast<size_t>(id) < policy_.operations.size());
  return policy_.operations[static_cast<size_t>(id)];
}

int Monitor::current_operation() const {
  return context_stack_.empty() ? policy_.default_op_id : context_stack_.back().op_id;
}

uint32_t Monitor::PrivRead(uint32_t addr, uint32_t size) {
  AccessResult r = machine_.bus().Read(addr, size, /*privileged=*/true);
  OPEC_CHECK_MSG(r.ok(), "monitor-internal read failed at " + opec_support::HexAddr(addr));
  return r.value;
}

void Monitor::PrivWrite(uint32_t addr, uint32_t size, uint32_t value) {
  AccessResult r = machine_.bus().Write(addr, size, value, /*privileged=*/true);
  OPEC_CHECK_MSG(r.ok(), "monitor-internal write failed at " + opec_support::HexAddr(addr));
}

void Monitor::CopyBytes(uint32_t src, uint32_t dst, uint32_t n) {
  // Shadow syncs and stack relocations copy plain SRAM; do those as one bulk
  // backing-store operation. The word-wise path (Bus::WordCopy) remains as
  // the fallback for anything the bulk path declines (device windows,
  // MPU-denied ranges) so fault behavior is unchanged, and the modeled cycle
  // charge is identical on both paths. Both paths use memmove direction
  // semantics: the old fallback here walked low-to-high unconditionally,
  // which corrupted overlapping forward copies (dst inside [src, src+n)) by
  // re-reading bytes it had already overwritten.
  if (!machine_.bus().BulkCopy(src, dst, n, /*privileged=*/true) &&
      !machine_.bus().WordCopy(src, dst, n, /*privileged=*/true)) {
    OPEC_CHECK_MSG(false, "monitor-internal copy faulted: src=" + opec_support::HexAddr(src) +
                              " dst=" + opec_support::HexAddr(dst));
  }
  machine_.AddCycles(costs_.per_word_copy * ((n + 3) / 4));
}

bool Monitor::Sanitize(const ExternalVar& ev, uint32_t shadow_addr) {
  ++stats_.sanitization_checks;
  uint32_t elem = ev.elem_size == 0 ? 4 : ev.elem_size;
  for (uint32_t off = 0; off + elem <= ev.size; off += elem) {
    uint32_t v = PrivRead(shadow_addr + off, elem);
    if (v < ev.san_min || v > ev.san_max) {
      last_violation_ = opec_support::StrPrintf(
          "sanitization failed for %s at offset %u: value %u outside [%u,%u]",
          ev.gv->name().c_str(), off, v, ev.san_min, ev.san_max);
      return false;
    }
  }
  return true;
}

bool Monitor::WriteBackShadows(int op_id) {
  const OperationPolicy& op = Op(op_id);
  for (const opec_compiler::ShadowPlacement& sp : op.shadows) {
    const ExternalVar& ev = policy_.externals[static_cast<size_t>(sp.var_index)];
    if (ev.sanitized && !Sanitize(ev, sp.addr)) {
      return false;  // abort: corrupted shadow must not propagate (Section 5.2)
    }
    CopyBytes(sp.addr, ev.public_addr, ev.size);
    stats_.synced_bytes += ev.size;
    OPEC_OBS_EVENT(opec_obs::EventKind::kShadowSync, machine_.cycles(), op_id, 0,
                   static_cast<uint32_t>(sp.var_index), ev.size, opec_obs::kSyncWriteBack);
  }
  return true;
}

void Monitor::CopyInShadows(int op_id) {
  const OperationPolicy& op = Op(op_id);
  for (const opec_compiler::ShadowPlacement& sp : op.shadows) {
    const ExternalVar& ev = policy_.externals[static_cast<size_t>(sp.var_index)];
    CopyBytes(ev.public_addr, sp.addr, ev.size);
    stats_.synced_bytes += ev.size;
    OPEC_OBS_EVENT(opec_obs::EventKind::kShadowSync, machine_.cycles(), op_id, 0,
                   static_cast<uint32_t>(sp.var_index), ev.size, opec_obs::kSyncCopyIn);
  }
}

void Monitor::UpdateRelocTable(int op_id) {
  const OperationPolicy& op = Op(op_id);
  // Default every entry to the public copy; operations never access
  // externals they do not need (analysis-guaranteed), and background reads
  // stay harmless.
  std::vector<uint32_t> targets(policy_.externals.size());
  for (size_t i = 0; i < policy_.externals.size(); ++i) {
    targets[i] = policy_.externals[i].public_addr;
  }
  for (const opec_compiler::ShadowPlacement& sp : op.shadows) {
    targets[static_cast<size_t>(sp.var_index)] = sp.addr;
  }
  for (size_t i = 0; i < targets.size(); ++i) {
    PrivWrite(policy_.externals[i].reloc_entry_addr, 4, targets[i]);
  }
}

int Monitor::ResolveExternalStorage(uint32_t addr, uint32_t* offset) const {
  for (size_t i = 0; i < policy_.externals.size(); ++i) {
    const ExternalVar& ev = policy_.externals[i];
    if (addr >= ev.public_addr && addr < ev.public_addr + ev.size) {
      *offset = addr - ev.public_addr;
      return static_cast<int>(i);
    }
  }
  for (const OperationPolicy& op : policy_.operations) {
    for (const opec_compiler::ShadowPlacement& sp : op.shadows) {
      const ExternalVar& ev = policy_.externals[static_cast<size_t>(sp.var_index)];
      if (addr >= sp.addr && addr < sp.addr + ev.size) {
        *offset = addr - sp.addr;
        return sp.var_index;
      }
    }
  }
  return -1;
}

void Monitor::RedirectPointerFields(int op_id) {
  const OperationPolicy& op = Op(op_id);
  // Where does variable v live for this operation?
  auto target_of = [&](int var_index) -> uint32_t {
    for (const opec_compiler::ShadowPlacement& sp : op.shadows) {
      if (sp.var_index == var_index) {
        return sp.addr;
      }
    }
    return policy_.externals[static_cast<size_t>(var_index)].public_addr;
  };
  for (const opec_compiler::ShadowPlacement& sp : op.shadows) {
    const ExternalVar& ev = policy_.externals[static_cast<size_t>(sp.var_index)];
    for (uint32_t field_off : ev.pointer_field_offsets) {
      uint32_t ptr = PrivRead(sp.addr + field_off, 4);
      if (ptr == 0) {
        continue;
      }
      uint32_t pointee_off = 0;
      int var_index = ResolveExternalStorage(ptr, &pointee_off);
      if (var_index < 0) {
        continue;  // points at internal/stack/peripheral storage: leave it
      }
      uint32_t want = target_of(var_index) + pointee_off;
      if (want != ptr) {
        PrivWrite(sp.addr + field_off, 4, want);
        ++stats_.pointer_redirections;
      }
    }
  }
}

void Monitor::ApplyStackSrd(uint8_t srd) {
  current_srd_ = srd;
  MpuRegionConfig stack_region;
  stack_region.enabled = true;
  stack_region.base = policy_.stack.base;
  stack_region.size_log2 = policy_.stack.size_log2;
  stack_region.srd = srd;
  stack_region.ap = AccessPerm::kFullAccess;
  stack_region.xn = true;
  machine_.mpu().ConfigureRegion(2, stack_region);
  machine_.AddCycles(costs_.mpu_region_write);
}

void Monitor::ConfigureMpuForOperation(int op_id, uint8_t srd) {
  const OperationPolicy& op = Op(op_id);
  opec_hw::Mpu& mpu = machine_.mpu();
  mpu.ConfigureRegion(0, policy_.background_region);
  mpu.ConfigureRegion(1, policy_.code_region);
  ApplyStackSrd(srd);
  if (op.has_section) {
    MpuRegionConfig section;
    section.enabled = true;
    section.base = op.section_base;
    section.size_log2 = op.section_size_log2;
    section.ap = AccessPerm::kFullAccess;
    section.xn = true;
    mpu.ConfigureRegion(3, section);
  } else {
    mpu.DisableRegion(3);
  }
  // Regions 4..7: the first (up to) four peripheral windows; the rest are
  // demand-mapped by the MemManage handler (Section 5.2).
  for (int i = 0; i < 4; ++i) {
    size_t w = static_cast<size_t>(i);
    if (w < op.periph_regions.size()) {
      const PeriphRegion& pr = op.periph_regions[w];
      MpuRegionConfig region;
      region.enabled = true;
      region.base = pr.base;
      region.size_log2 = pr.size_log2;
      region.ap = AccessPerm::kFullAccess;
      region.xn = true;
      mpu.ConfigureRegion(4 + i, region);
    } else {
      mpu.DisableRegion(4 + i);
    }
  }
  machine_.AddCycles(costs_.mpu_region_write * 7);
  periph_rr_ = 0;
  mpu.set_enabled(true);
}

void Monitor::OnProgramStart(opec_rt::EngineControl* engine) {
  engine_ = engine;
  context_stack_.clear();

  // Initialization (Section 5.1): copy each global's initial value into every
  // shadow copy, then enter the default operation and drop privilege.
  for (const OperationPolicy& op : policy_.operations) {
    for (const opec_compiler::ShadowPlacement& sp : op.shadows) {
      const ExternalVar& ev = policy_.externals[static_cast<size_t>(sp.var_index)];
      CopyBytes(ev.public_addr, sp.addr, ev.size);
    }
  }
  UpdateRelocTable(policy_.default_op_id);
  RedirectPointerFields(policy_.default_op_id);
  ConfigureMpuForOperation(policy_.default_op_id, /*srd=*/0);
  machine_.set_privileged(false);
}

void Monitor::OnProgramEnd() { machine_.set_privileged(true); }

namespace {

void SaveRegionConfig(opec_hw::StateWriter& w, const MpuRegionConfig& r) {
  w.Bool(r.enabled);
  w.U32(r.base);
  w.U8(r.size_log2);
  w.U8(r.srd);
  w.U8(static_cast<uint8_t>(r.ap));
  w.Bool(r.xn);
}

MpuRegionConfig LoadRegionConfig(opec_hw::StateReader& r) {
  MpuRegionConfig cfg;
  cfg.enabled = r.Bool();
  cfg.base = r.U32();
  cfg.size_log2 = r.U8();
  cfg.srd = r.U8();
  cfg.ap = static_cast<opec_hw::AccessPerm>(r.U8());
  cfg.xn = r.Bool();
  return cfg;
}

}  // namespace

void Monitor::SaveState(opec_hw::StateWriter& w) const {
  w.U64(context_stack_.size());
  for (const OpContext& ctx : context_stack_) {
    w.U32(static_cast<uint32_t>(ctx.op_id));
    w.U32(static_cast<uint32_t>(ctx.previous_op_id));
    w.U32(ctx.saved_sp);
    w.U8(ctx.saved_srd);
    for (const MpuRegionConfig& cfg : ctx.saved_periph) {
      SaveRegionConfig(w, cfg);
    }
    SaveRegionConfig(w, ctx.saved_section);
    w.U32(static_cast<uint32_t>(ctx.saved_rr));
    w.U64(ctx.relocs.size());
    for (const StackReloc& reloc : ctx.relocs) {
      w.U32(reloc.original);
      w.U32(reloc.copy);
      w.U32(reloc.size);
    }
  }
  w.U8(current_srd_);
  w.U32(static_cast<uint32_t>(periph_rr_));
  w.U64(stats_.operation_switches);
  w.U64(stats_.synced_bytes);
  w.U64(stats_.relocated_stack_bytes);
  w.U64(stats_.virtualization_faults);
  w.U64(stats_.emulated_core_accesses);
  w.U64(stats_.pointer_redirections);
  w.U64(stats_.sanitization_checks);
  w.Str(last_violation_);
}

void Monitor::LoadState(opec_hw::StateReader& r) {
  context_stack_.clear();
  context_stack_.resize(r.U64());
  for (OpContext& ctx : context_stack_) {
    ctx.op_id = static_cast<int>(r.U32());
    ctx.previous_op_id = static_cast<int>(r.U32());
    ctx.saved_sp = r.U32();
    ctx.saved_srd = r.U8();
    for (MpuRegionConfig& cfg : ctx.saved_periph) {
      cfg = LoadRegionConfig(r);
    }
    ctx.saved_section = LoadRegionConfig(r);
    ctx.saved_rr = static_cast<int>(r.U32());
    ctx.relocs.resize(r.U64());
    for (StackReloc& reloc : ctx.relocs) {
      reloc.original = r.U32();
      reloc.copy = r.U32();
      reloc.size = r.U32();
    }
  }
  current_srd_ = r.U8();
  periph_rr_ = static_cast<int>(r.U32());
  stats_.operation_switches = r.U64();
  stats_.synced_bytes = r.U64();
  stats_.relocated_stack_bytes = r.U64();
  stats_.virtualization_faults = r.U64();
  stats_.emulated_core_accesses = r.U64();
  stats_.pointer_redirections = r.U64();
  stats_.sanitization_checks = r.U64();
  last_violation_ = r.Str();
}

bool Monitor::OnOperationEnter(int op_id, std::vector<uint32_t>& args) {
  OPEC_CHECK(engine_ != nullptr);
  machine_.set_privileged(true);  // SVC: exception entry
  machine_.AddCycles(costs_.switch_overhead);
  ++stats_.operation_switches;

  int prev = current_operation();
  const OperationPolicy& op = Op(op_id);

  // Data synchronization (Figure 7): write back the previous operation's
  // shadows (with sanitization), then fill the new operation's shadows.
  if (!WriteBackShadows(prev)) {
    machine_.set_privileged(false);
    return false;
  }
  CopyInShadows(op_id);
  UpdateRelocTable(op_id);
  RedirectPointerFields(op_id);

  // Stack protection (Figure 8): save the previous context, relocate buffers
  // pointed to by pointer-type arguments onto the new operation's stack
  // portion, and disable the sub-regions used by previous operations.
  OpContext ctx;
  ctx.op_id = op_id;
  ctx.previous_op_id = prev;
  ctx.saved_sp = engine_->sp();
  ctx.saved_srd = current_srd_;
  ctx.saved_rr = periph_rr_;
  ctx.saved_section = machine_.mpu().region(3);
  for (int i = 0; i < 4; ++i) {
    ctx.saved_periph[static_cast<size_t>(i)] = machine_.mpu().region(4 + i);
  }

  uint32_t sub = policy_.stack.subregion_size();
  uint32_t sp = engine_->sp();
  uint32_t boundary = policy_.stack.base + ((sp - policy_.stack.base) / sub) * sub;
  uint32_t new_sp = boundary;
  for (const auto& [arg_index, buf_size] : op.pointer_arg_sizes) {
    OPEC_CHECK_MSG(arg_index >= 0 && static_cast<size_t>(arg_index) < args.size(),
                   "stack info names a nonexistent argument");
    uint32_t ptr = args[static_cast<size_t>(arg_index)];
    bool on_previous_stack = ptr >= boundary && ptr < policy_.stack.top;
    if (!on_previous_stack) {
      continue;  // points at globals / its own stack: no relocation needed
    }
    new_sp = (new_sp - buf_size) & ~7u;
    if (new_sp < policy_.stack.base) {
      last_violation_ = "stack exhausted while relocating entry arguments";
      machine_.set_privileged(false);
      return false;
    }
    CopyBytes(ptr, new_sp, buf_size);
    stats_.relocated_stack_bytes += buf_size;
    ctx.relocs.push_back({ptr, new_sp, buf_size});
    args[static_cast<size_t>(arg_index)] = new_sp;
  }
  engine_->set_sp(new_sp);

  uint32_t boundary_sub = (boundary - policy_.stack.base) / sub;
  uint8_t srd = 0;
  for (uint32_t i = boundary_sub; i < 8; ++i) {
    srd |= static_cast<uint8_t>(1u << i);
  }
  context_stack_.push_back(std::move(ctx));
  ConfigureMpuForOperation(op_id, srd);

  machine_.set_privileged(false);  // exception return to unprivileged code
  return true;
}

bool Monitor::OnOperationExit(int op_id) {
  OPEC_CHECK(!context_stack_.empty());
  OPEC_CHECK(context_stack_.back().op_id == op_id);
  machine_.set_privileged(true);
  machine_.AddCycles(costs_.switch_overhead);
  ++stats_.operation_switches;

  OpContext ctx = std::move(context_stack_.back());
  context_stack_.pop_back();

  // Sanitize + write back the exiting operation's shadows, then restore the
  // previous operation's shadows (Figure 7, "returning to B from C").
  if (!WriteBackShadows(op_id)) {
    machine_.set_privileged(false);
    return false;
  }
  CopyInShadows(ctx.previous_op_id);
  UpdateRelocTable(ctx.previous_op_id);
  RedirectPointerFields(ctx.previous_op_id);

  // Copy relocated buffers back to the previous stack (Figure 8(e)) and
  // restore the context.
  for (auto it = ctx.relocs.rbegin(); it != ctx.relocs.rend(); ++it) {
    CopyBytes(it->copy, it->original, it->size);
  }
  engine_->set_sp(ctx.saved_sp);
  ApplyStackSrd(ctx.saved_srd);
  machine_.mpu().ConfigureRegion(3, ctx.saved_section);
  for (int i = 0; i < 4; ++i) {
    machine_.mpu().ConfigureRegion(4 + i, ctx.saved_periph[static_cast<size_t>(i)]);
  }
  periph_rr_ = ctx.saved_rr;
  machine_.AddCycles(costs_.mpu_region_write * 6);
  // General-purpose registers are cleared on exit (Section 5.3) — modeled as
  // part of the switch overhead.

  machine_.set_privileged(false);
  return true;
}

bool Monitor::OnMemFault(uint32_t addr, AccessKind kind) {
  (void)kind;
  machine_.AddCycles(costs_.fault_entry);
  const OperationPolicy& op = Op(current_operation());
  // Heap access: operations whose code uses the allocator get the whole heap
  // section, demand-mapped like a peripheral window (Section 5.2, "Heap").
  if (policy_.heap_size() > 0 && addr >= policy_.heap_base &&
      addr - policy_.heap_base < policy_.heap_size()) {
    if (!op.uses_heap) {
      return false;  // this operation has no business in the heap
    }
    MpuRegionConfig region;
    region.enabled = true;
    region.base = policy_.heap_base;
    region.size_log2 = policy_.heap_size_log2;
    region.ap = AccessPerm::kFullAccess;
    region.xn = true;
    machine_.mpu().ConfigureRegion(4 + periph_rr_, region);
    periph_rr_ = (periph_rr_ + 1) % 4;
    machine_.AddCycles(costs_.mpu_region_write);
    ++stats_.virtualization_faults;
    return true;
  }
  // Legitimate peripheral access for this operation? (Section 5.2:
  // "OPEC-Monitor verifies whether it is legitimate access by checking the
  // peripheral address against the peripheral list of the current operation")
  bool allowed = false;
  for (const auto& [base, size] : op.periph_ranges) {
    if (addr >= base && addr - base < size) {
      allowed = true;
      break;
    }
  }
  if (!allowed) {
    return false;  // genuine violation: the engine aborts the program
  }
  // Find the MPU window covering the address and demand-map it into one of
  // the four reserved regions, round-robin.
  for (const PeriphRegion& pr : op.periph_regions) {
    if (addr >= pr.base && addr - pr.base < (1u << pr.size_log2)) {
      MpuRegionConfig region;
      region.enabled = true;
      region.base = pr.base;
      region.size_log2 = pr.size_log2;
      region.ap = AccessPerm::kFullAccess;
      region.xn = true;
      machine_.mpu().ConfigureRegion(4 + periph_rr_, region);
      periph_rr_ = (periph_rr_ + 1) % 4;
      machine_.AddCycles(costs_.mpu_region_write);
      ++stats_.virtualization_faults;
      return true;
    }
  }
  return false;
}

bool Monitor::OnBusFault(uint32_t addr, uint32_t size, AccessKind kind, uint32_t write_value,
                         uint32_t* read_value) {
  machine_.AddCycles(costs_.fault_entry);
  // Only unprivileged access to allowlisted core peripherals is emulated
  // (Section 5.2, "Peripherals").
  const opec_hw::PeripheralInfo* info = soc_.Find(addr);
  if (info == nullptr || !info->is_core) {
    return false;
  }
  const OperationPolicy& op = Op(current_operation());
  if (op.core_periph_names.count(info->name) == 0) {
    last_violation_ = "core peripheral not allowed for operation: " + info->name;
    return false;
  }
  // Emulate the load/store at the privileged level.
  machine_.set_privileged(true);
  AccessResult r = kind == AccessKind::kRead
                       ? machine_.bus().Read(addr, size, true)
                       : machine_.bus().Write(addr, size, write_value, true);
  machine_.set_privileged(false);
  machine_.AddCycles(costs_.emulation);
  if (!r.ok()) {
    return false;
  }
  if (kind == AccessKind::kRead && read_value != nullptr) {
    *read_value = r.value;
  }
  ++stats_.emulated_core_accesses;
  return true;
}

}  // namespace opec_monitor
