#include "src/rv/monitors.h"

#include <algorithm>
#include <set>

#include "src/hw/mpu.h"
#include "src/support/check.h"
#include "src/support/text.h"

namespace opec_rv {

using opec_obs::Event;
using opec_obs::EventKind;

const std::vector<std::string>& StandardMonitorNames() {
  static const std::vector<std::string> kNames = {
      "switch-protocol", "shadow-isolation", "mpu-cache-coherence", "call-depth"};
  return kNames;
}

namespace {

constexpr int32_t kNone = INT32_MIN;

// (1) Operation-switch protocol. A switch window opens at the kSvc and must
// run write-back* → copy-in* → kMpuReconfig+ → kOperation{Enter,Exit} with
// nothing else interleaved; enter/exit SVCs pair LIFO on the operation id.
// Mid-window aborts (monitor rejections) surface as a violation either from
// the unwind's kFunctionExit landing in a window state or from Finish().
std::unique_ptr<Automaton> BuildSwitchProtocol() {
  struct Ctx {
    int32_t pending = kNone;          // target op of the open enter window
    int32_t exiting = kNone;          // op of the open exit window
    std::vector<int32_t> active;      // entered-but-not-exited operations
  };
  auto ctx = std::make_shared<Ctx>();
  auto a = std::make_unique<Automaton>("switch-protocol");
  const int idle = a->AddState("idle");
  const int e_wb = a->AddState("enter-write-back", /*strict=*/true);
  const int e_ci = a->AddState("enter-copy-in", /*strict=*/true);
  const int e_mpu = a->AddState("enter-mpu-reconfig", /*strict=*/true);
  const int x_wb = a->AddState("exit-write-back", /*strict=*/true);
  const int x_ci = a->AddState("exit-copy-in", /*strict=*/true);
  const int x_mpu = a->AddState("exit-mpu-reconfig", /*strict=*/true);

  auto is_write_back = [](const Event& ev) { return ev.arg2 == opec_obs::kSyncWriteBack; };
  auto is_copy_in = [](const Event& ev) { return ev.arg2 == opec_obs::kSyncCopyIn; };

  // idle: switches open here; loose shadow/operation events are violations,
  // everything else (functions, faults, MMIO, boot-time reconfigs) passes.
  a->AddGuardedRule(idle, EventKind::kSvc,
                    [ctx](const Event& ev) {
                      if (ev.arg1 != 0) return false;
                      ctx->pending = static_cast<int32_t>(ev.arg0);
                      return true;
                    },
                    e_wb);
  a->AddGuardedRule(idle, EventKind::kSvc,
                    [ctx](const Event& ev) {
                      if (ev.arg1 != 1 || ctx->active.empty() ||
                          ctx->active.back() != static_cast<int32_t>(ev.arg0)) {
                        return false;
                      }
                      ctx->exiting = static_cast<int32_t>(ev.arg0);
                      return true;
                    },
                    x_wb);
  a->AddRule(idle, EventKind::kSvc, Automaton::kViolation,
             "exit-side SVC does not match the innermost active operation");
  a->AddRule(idle, EventKind::kShadowSync, Automaton::kViolation,
             "shadow sync outside an operation-switch window");
  a->AddRule(idle, EventKind::kOperationEnter, Automaton::kViolation,
             "operation enter without an SVC window");
  a->AddRule(idle, EventKind::kOperationExit, Automaton::kViolation,
             "operation exit without an SVC window");

  // Enter window: write-backs of the previous op, then copy-ins of the
  // target, then MPU reprogramming, then the enter event itself.
  a->AddGuardedRule(e_wb, EventKind::kShadowSync, is_write_back, e_wb);
  a->AddGuardedRule(e_wb, EventKind::kShadowSync, is_copy_in, e_ci);
  a->AddRule(e_wb, EventKind::kMpuReconfig, e_mpu);
  a->AddGuardedRule(e_ci, EventKind::kShadowSync, is_copy_in, e_ci);
  a->AddRule(e_ci, EventKind::kShadowSync, Automaton::kViolation,
             "write-back after copy-in in an enter window");
  a->AddRule(e_ci, EventKind::kMpuReconfig, e_mpu);
  a->AddRule(e_mpu, EventKind::kMpuReconfig, e_mpu);
  a->AddGuardedRule(e_mpu, EventKind::kOperationEnter,
                    [ctx](const Event& ev) {
                      if (ctx->pending != static_cast<int32_t>(ev.arg0)) return false;
                      ctx->active.push_back(ctx->pending);
                      ctx->pending = kNone;
                      return true;
                    },
                    idle);
  a->AddRule(e_mpu, EventKind::kOperationEnter, Automaton::kViolation,
             "operation enter does not match the SVC target");

  // Exit window: mirrored, closed by kOperationExit of the SVC'd operation.
  a->AddGuardedRule(x_wb, EventKind::kShadowSync, is_write_back, x_wb);
  a->AddGuardedRule(x_wb, EventKind::kShadowSync, is_copy_in, x_ci);
  a->AddRule(x_wb, EventKind::kMpuReconfig, x_mpu);
  a->AddGuardedRule(x_ci, EventKind::kShadowSync, is_copy_in, x_ci);
  a->AddRule(x_ci, EventKind::kShadowSync, Automaton::kViolation,
             "write-back after copy-in in an exit window");
  a->AddRule(x_ci, EventKind::kMpuReconfig, x_mpu);
  a->AddRule(x_mpu, EventKind::kMpuReconfig, x_mpu);
  a->AddGuardedRule(x_mpu, EventKind::kOperationExit,
                    [ctx](const Event& ev) {
                      if (ctx->exiting != static_cast<int32_t>(ev.arg0) ||
                          ctx->active.empty() || ctx->active.back() != ctx->exiting) {
                        return false;
                      }
                      ctx->active.pop_back();
                      ctx->exiting = kNone;
                      return true;
                    },
                    idle);
  a->AddRule(x_mpu, EventKind::kOperationExit, Automaton::kViolation,
             "operation exit does not match the SVC'd operation");

  a->SetResetHook([ctx]() {
    ctx->pending = kNone;
    ctx->exiting = kNone;
    ctx->active.clear();
  });
  a->SetFinishHook([ctx](bool aborted, int state) -> std::string {
    if (state != 0) {
      return "run ended inside an operation-switch window";
    }
    if (!aborted && !ctx->active.empty()) {
      return opec_support::StrPrintf("%zu operation(s) still active at clean end of run",
                                     ctx->active.size());
    }
    return "";
  });
  a->Compile();
  return a;
}

// (2) Shadow isolation. Every kShadowSync must be attributed to the
// operation that owns that shadow placement, and an unresolved memory/bus
// fault (a write the MPU denied) is always a violation — inside a switch
// window it is a protocol break, outside it is a denied attack write.
std::unique_ptr<Automaton> BuildShadowIsolation(const RvEnv& env) {
  struct Ctx {
    std::set<std::pair<int32_t, uint32_t>> owners;
    bool in_window = false;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->owners.insert(env.shadow_owners.begin(), env.shadow_owners.end());
  auto a = std::make_unique<Automaton>("shadow-isolation");
  const int watch = a->AddState("watch");

  a->AddGuardedRule(watch, EventKind::kSvc,
                    [ctx](const Event&) {
                      ctx->in_window = true;
                      return true;
                    },
                    watch);
  auto close_window = [ctx](const Event&) {
    ctx->in_window = false;
    return true;
  };
  a->AddGuardedRule(watch, EventKind::kOperationEnter, close_window, watch);
  a->AddGuardedRule(watch, EventKind::kOperationExit, close_window, watch);
  a->AddGuardedRule(watch, EventKind::kShadowSync,
                    [ctx](const Event& ev) {
                      return ctx->owners.count({ev.operation_id, ev.arg0}) != 0;
                    },
                    watch);
  a->AddRule(watch, EventKind::kShadowSync, Automaton::kViolation,
             "shadow sync attributed to an operation that does not own the shadow");
  for (EventKind kind : {EventKind::kMemFault, EventKind::kBusFault}) {
    a->AddGuardedRule(watch, kind,
                      [ctx](const Event& ev) {
                        if ((ev.arg2 & opec_obs::kFaultResolved) != 0 || !ctx->in_window) {
                          return false;
                        }
                        return true;
                      },
                      Automaton::kViolation,
                      "unresolved fault inside an operation-switch window");
    a->AddGuardedRule(watch, kind,
                      [](const Event& ev) {
                        return (ev.arg2 & opec_obs::kFaultResolved) == 0;
                      },
                      Automaton::kViolation, "write denied by the MPU/privilege rules");
  }

  a->SetResetHook([ctx]() { ctx->in_window = false; });
  a->Compile();
  return a;
}

// (3) MPU-reconfig / verdict-cache coherence. At the time a kMpuReconfig is
// observed the MPU must already have invalidated its decision cache (the
// generation counter moved since the last reconfig we saw) and the event
// payload must agree with the live region state.
std::unique_ptr<Automaton> BuildMpuCacheCoherence(const RvEnv& env) {
  struct Ctx {
    uint64_t last_generation = 0;
  };
  auto ctx = std::make_shared<Ctx>();
  const opec_hw::Mpu* mpu = env.mpu;
  auto a = std::make_unique<Automaton>("mpu-cache-coherence");
  const int watch = a->AddState("watch");

  a->AddGuardedRule(watch, EventKind::kMpuReconfig,
                    [ctx, mpu](const Event& ev) {
                      if (mpu == nullptr) return true;  // synthetic stream: nothing to check
                      if (ev.arg0 >= static_cast<uint32_t>(opec_hw::Mpu::kNumRegions)) {
                        return false;
                      }
                      const uint64_t generation = mpu->generation();
                      if (generation <= ctx->last_generation) return false;
                      const opec_hw::MpuRegionConfig& r =
                          mpu->region(static_cast<int>(ev.arg0));
                      if (r.base != ev.arg1 ||
                          opec_obs::PackMpuConfig(r.enabled, r.size_log2, r.srd,
                                                  static_cast<uint8_t>(r.ap)) != ev.arg2) {
                        return false;
                      }
                      ctx->last_generation = generation;
                      return true;
                    },
                    watch);
  a->AddGuardedRule(watch, EventKind::kMpuReconfig,
                    [ctx, mpu](const Event&) {
                      return mpu != nullptr && mpu->generation() <= ctx->last_generation;
                    },
                    Automaton::kViolation,
                    "MPU reconfig without a verdict-cache invalidation");
  a->AddRule(watch, EventKind::kMpuReconfig, Automaton::kViolation,
             "kMpuReconfig payload disagrees with the live MPU region state");

  // After a violation, resync so an unrelated later reconfig is judged on
  // its own generation step, not against the stale watermark.
  a->SetResetHook([ctx, mpu]() {
    if (mpu != nullptr) ctx->last_generation = mpu->generation();
  });
  a->Compile();
  return a;
}

// (4) Call-depth balance: kFunctionEnter/kFunctionExit pair LIFO on
// (function ordinal, depth) — the abort unwind emits exits too, so even
// aborted runs balance; only a run that ends mid-call-tree without the
// unwind (a host-side check failure) leaves frames open.
std::unique_ptr<Automaton> BuildCallDepth() {
  struct Ctx {
    std::vector<std::pair<uint32_t, int32_t>> frames;  // (ordinal, depth)
  };
  auto ctx = std::make_shared<Ctx>();
  auto a = std::make_unique<Automaton>("call-depth");
  const int watch = a->AddState("watch");

  a->AddGuardedRule(watch, EventKind::kFunctionEnter,
                    [ctx](const Event& ev) {
                      ctx->frames.emplace_back(ev.arg0, ev.depth);
                      return true;
                    },
                    watch);
  a->AddGuardedRule(watch, EventKind::kFunctionExit,
                    [ctx](const Event& ev) {
                      if (ctx->frames.empty() || ctx->frames.back().first != ev.arg0 ||
                          ctx->frames.back().second != ev.depth) {
                        return false;
                      }
                      ctx->frames.pop_back();
                      return true;
                    },
                    watch);
  a->AddRule(watch, EventKind::kFunctionExit, Automaton::kViolation,
             "function exit does not pair with the innermost open function enter");

  a->SetResetHook([ctx]() { ctx->frames.clear(); });
  a->SetFinishHook([ctx](bool aborted, int) -> std::string {
    if (!aborted && !ctx->frames.empty()) {
      return opec_support::StrPrintf("%zu function frame(s) still open at clean end of run",
                                     ctx->frames.size());
    }
    return "";
  });
  a->Compile();
  return a;
}

}  // namespace

std::vector<std::unique_ptr<Automaton>> BuildStandardMonitors(const RvEnv& env) {
  std::vector<std::unique_ptr<Automaton>> monitors;
  monitors.push_back(BuildSwitchProtocol());
  monitors.push_back(BuildShadowIsolation(env));
  monitors.push_back(BuildMpuCacheCoherence(env));
  monitors.push_back(BuildCallDepth());
  for (size_t i = 0; i < monitors.size(); ++i) {
    OPEC_CHECK(monitors[i]->name() == StandardMonitorNames()[i]);
  }
  return monitors;
}

}  // namespace opec_rv
