#include "src/rv/rv.h"

#include "src/support/text.h"

namespace opec_rv {

std::string FormatEvent(const opec_obs::Event& event) {
  return opec_support::StrPrintf(
      "%s cycle=%llu op=%d depth=%d arg0=0x%X arg1=0x%X arg2=0x%X",
      opec_obs::EventKindName(event.kind),
      static_cast<unsigned long long>(event.cycle), static_cast<int>(event.operation_id),
      static_cast<int>(event.depth), event.arg0, event.arg1, event.arg2);
}

RvSink::RvSink(std::vector<std::unique_ptr<Automaton>> monitors, Options options)
    : monitors_(std::move(monitors)),
      options_(options),
      context_(options.context_depth == 0 ? 1 : options.context_depth) {}

void RvSink::OnEvent(const opec_obs::Event& event) {
  for (std::unique_ptr<Automaton>& m : monitors_) {
    if (m->Step(event)) {
      Record(*m, &event);
    }
  }
  // Fed after stepping so a violation's `recent` holds the events *before*
  // the offending one (the offender itself is in RvViolation::event).
  context_.OnEvent(event);
}

void RvSink::Finish(bool run_aborted) {
  for (std::unique_ptr<Automaton>& m : monitors_) {
    if (m->Finish(run_aborted)) {
      Record(*m, nullptr);
    }
  }
}

void RvSink::Record(const Automaton& automaton, const opec_obs::Event* event) {
  if (details_.size() >= options_.max_details) {
    return;  // counts in the automata stay exact; only the detail list caps
  }
  RvViolation v;
  v.automaton = automaton.name();
  v.state = automaton.state_name(automaton.last_violation_state());
  v.message = automaton.last_violation_message();
  if (event != nullptr) {
    v.event = *event;
  } else {
    v.event = opec_obs::Event{};  // Finish() violation: no offending event
    v.event.cycle = 0;
  }
  v.recent = context_.Snapshot();
  details_.push_back(std::move(v));
}

uint64_t RvSink::total_violations() const {
  uint64_t n = 0;
  for (const std::unique_ptr<Automaton>& m : monitors_) {
    n += m->violations();
  }
  return n;
}

uint64_t RvSink::states_visited() const {
  uint64_t n = 0;
  for (const std::unique_ptr<Automaton>& m : monitors_) {
    n += m->visited_states();
  }
  return n;
}

std::vector<uint64_t> RvSink::ViolationsByMonitor() const {
  std::vector<uint64_t> v;
  v.reserve(monitors_.size());
  for (const std::unique_ptr<Automaton>& m : monitors_) {
    v.push_back(m->violations());
  }
  return v;
}

std::string RvSink::Report() const {
  std::string out = "RV report\n";
  for (const std::unique_ptr<Automaton>& m : monitors_) {
    out += opec_support::StrPrintf(
        "  %s: states=%zu visited=%zu steps=%llu violations=%llu\n", m->name().c_str(),
        m->state_count(), m->visited_states(), static_cast<unsigned long long>(m->steps()),
        static_cast<unsigned long long>(m->violations()));
  }
  out += opec_support::StrPrintf("  total violations: %llu\n",
                                 static_cast<unsigned long long>(total_violations()));
  for (size_t i = 0; i < details_.size(); ++i) {
    const RvViolation& v = details_[i];
    out += opec_support::StrPrintf("  violation %zu: [%s] state=%s %s\n", i,
                                   v.automaton.c_str(), v.state.c_str(), v.message.c_str());
    out += "    event: " + FormatEvent(v.event) + "\n";
  }
  return out;
}

std::unique_ptr<RvSink> MakeStandardRvSink(const RvEnv& env) {
  return std::make_unique<RvSink>(BuildStandardMonitors(env));
}

}  // namespace opec_rv
