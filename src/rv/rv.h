// RvSink: runs a set of compiled safety automata over the live obs event
// stream of one run (DESIGN.md §15). Violations are recorded as structured
// RvViolation records with the last-N preceding events (via the existing
// ring-buffer Recorder) and summarized in a deterministic, modeled-data-only
// report that is byte-identical across engines, job orders and boot modes.

#ifndef SRC_RV_RV_H_
#define SRC_RV_RV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/event.h"
#include "src/obs/recorder.h"
#include "src/rv/automaton.h"
#include "src/rv/monitors.h"

namespace opec_rv {

struct RvViolation {
  std::string automaton;
  std::string state;               // state the automaton was in when it fired
  opec_obs::Event event;           // offending event (zeroed for Finish() violations)
  std::string message;
  std::vector<opec_obs::Event> recent;  // events immediately before the offender
};

// One line of human-or-machine-readable event description (kind, cycle,
// operation, payload) used by the violation report; deterministic.
std::string FormatEvent(const opec_obs::Event& event);

struct RvOptions {
  size_t context_depth = 16;  // ring of recent events kept per violation
  size_t max_details = 8;     // detailed RvViolation records kept (counts are exact)
};

class RvSink : public opec_obs::Sink {
 public:
  using Options = RvOptions;

  explicit RvSink(std::vector<std::unique_ptr<Automaton>> monitors,
                  Options options = Options());

  void OnEvent(const opec_obs::Event& event) override;
  // End-of-run hook: runs each automaton's finish check. `run_aborted` is
  // true when the guest aborted (ExecutionAborted unwind). Idempotent.
  void Finish(bool run_aborted);

  size_t monitor_count() const { return monitors_.size(); }
  const Automaton& monitor(size_t i) const { return *monitors_[i]; }
  uint64_t total_violations() const;
  // Distinct automaton states visited, summed over monitors.
  uint64_t states_visited() const;
  std::vector<uint64_t> ViolationsByMonitor() const;
  const std::vector<RvViolation>& details() const { return details_; }

  // Deterministic multi-line report (first line "RV report"): per-monitor
  // state/step/violation counts plus the first max_details violations.
  // Contains only modeled data, so interp and bytecode runs of the same
  // workload produce byte-identical reports.
  std::string Report() const;

 private:
  void Record(const Automaton& automaton, const opec_obs::Event* event);

  std::vector<std::unique_ptr<Automaton>> monitors_;
  Options options_;
  opec_obs::Recorder context_;
  std::vector<RvViolation> details_;
};

// Convenience: standard monitors over `env` (see monitors.h).
std::unique_ptr<RvSink> MakeStandardRvSink(const RvEnv& env);

}  // namespace opec_rv

#endif  // SRC_RV_RV_H_
