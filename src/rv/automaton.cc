#include "src/rv/automaton.h"

#include "src/support/check.h"
#include "src/support/text.h"

namespace opec_rv {

static_assert(static_cast<size_t>(opec_obs::EventKind::kShadowSync) == kNumEventKinds - 1,
              "EventKind grew: widen the rv transition table and audit every monitor");

int Automaton::AddState(std::string name, bool strict) {
  OPEC_CHECK_MSG(!compiled_, "AddState after Compile()");
  OPEC_CHECK_MSG(states_.size() < 64, "automata are limited to 64 states (visited bitmask)");
  states_.push_back({std::move(name), strict});
  return static_cast<int>(states_.size()) - 1;
}

void Automaton::AddRule(int state, opec_obs::EventKind kind, int target, std::string message) {
  AddGuardedRule(state, kind, nullptr, target, std::move(message));
}

void Automaton::AddGuardedRule(int state, opec_obs::EventKind kind, Guard guard, int target,
                               std::string message) {
  OPEC_CHECK_MSG(!compiled_, "AddGuardedRule after Compile()");
  OPEC_CHECK(state >= 0 && state < static_cast<int>(states_.size()));
  OPEC_CHECK(target == kViolation || (target >= 0 && target < static_cast<int>(states_.size())));
  RuleDef def;
  def.state = state;
  def.kind = static_cast<size_t>(kind);
  def.rule.guard = std::move(guard);
  def.rule.target = target;
  def.rule.message = std::move(message);
  rule_defs_.push_back(std::move(def));
}

void Automaton::Compile() {
  OPEC_CHECK_MSG(!compiled_, "Compile() twice");
  OPEC_CHECK_MSG(!states_.empty(), "automaton with no states");
  table_.assign(states_.size() * kNumEventKinds, Cell{});
  // Bucket the declared rules per (state, kind) cell, preserving declaration
  // order within a cell (first-match-wins).
  std::vector<uint32_t> counts(table_.size(), 0);
  for (const RuleDef& def : rule_defs_) {
    ++counts[static_cast<size_t>(def.state) * kNumEventKinds + def.kind];
  }
  uint32_t at = 0;
  for (size_t i = 0; i < table_.size(); ++i) {
    table_[i].begin = at;
    at += counts[i];
    table_[i].end = table_[i].begin;  // fill cursor, bumped below
  }
  rules_.resize(rule_defs_.size());
  for (RuleDef& def : rule_defs_) {
    Cell& cell = table_[static_cast<size_t>(def.state) * kNumEventKinds + def.kind];
    rules_[cell.end++] = std::move(def.rule);
  }
  rule_defs_.clear();
  compiled_ = true;
}

void Automaton::Violate(const std::string& message, int state) {
  ++violations_;
  last_message_ = message;
  last_state_ = state;
  state_ = 0;
  if (reset_hook_) {
    reset_hook_();
  }
}

bool Automaton::Step(const opec_obs::Event& event) {
  OPEC_CHECK_MSG(compiled_, "Step() before Compile()");
  ++steps_;
  const size_t kind = static_cast<size_t>(event.kind);
  const Cell& cell = table_[static_cast<size_t>(state_) * kNumEventKinds + kind];
  for (uint32_t i = cell.begin; i < cell.end; ++i) {
    const Rule& rule = rules_[i];
    if (rule.guard && !rule.guard(event)) {
      continue;
    }
    if (rule.target == kViolation) {
      Violate(rule.message.empty()
                  ? opec_support::StrPrintf("forbidden %s in state %s",
                                            opec_obs::EventKindName(event.kind),
                                            states_[static_cast<size_t>(state_)].name.c_str())
                  : rule.message,
              state_);
      return true;
    }
    if (rule.target != state_) {
      state_ = rule.target;
      visited_mask_ |= 1ull << state_;
    }
    return false;
  }
  if (states_[static_cast<size_t>(state_)].strict) {
    Violate(opec_support::StrPrintf("unexpected %s in state %s",
                                    opec_obs::EventKindName(event.kind),
                                    states_[static_cast<size_t>(state_)].name.c_str()),
            state_);
    return true;
  }
  return false;  // non-strict states ignore unmatched events
}

bool Automaton::Finish(bool aborted) {
  OPEC_CHECK_MSG(compiled_, "Finish() before Compile()");
  if (finished_ || !finish_hook_) {
    return false;
  }
  finished_ = true;
  std::string message = finish_hook_(aborted, state_);
  if (message.empty()) {
    return false;
  }
  Violate(message, state_);
  return true;
}

size_t Automaton::visited_states() const {
  size_t n = 0;
  for (uint64_t m = visited_mask_; m != 0; m &= m - 1) {
    ++n;
  }
  return n;
}

}  // namespace opec_rv
