// The standard always-on monitors: four safety automata encoding OPEC's
// operation-switch and isolation invariants (DESIGN.md §15).

#ifndef SRC_RV_MONITORS_H_
#define SRC_RV_MONITORS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/rv/automaton.h"

namespace opec_hw {
class Mpu;
}  // namespace opec_hw

namespace opec_rv {

// Everything the standard monitors need from the run being watched. Plain
// data + one device pointer, so src/rv depends only on obs + hw.
struct RvEnv {
  // Cross-checked by the mpu-cache-coherence monitor; may be null (synthetic
  // streams), which skips the generation/region checks.
  const opec_hw::Mpu* mpu = nullptr;
  // (operation id, external var index) pairs from the compile policy: which
  // operation owns a shadow copy of which external. Empty in vanilla mode —
  // vanilla runs emit no kShadowSync, so any one is a violation there.
  std::vector<std::pair<int32_t, uint32_t>> shadow_owners;
  bool opec_mode = false;
};

// Fixed name order for the standard monitors — campaign aggregation and the
// deterministic reports index by it.
const std::vector<std::string>& StandardMonitorNames();

// Builds the four compiled automata, in StandardMonitorNames() order:
//   switch-protocol      kSvc(enter) → write-back* → copy-in* → reconfig+ →
//                        kOperationEnter, mirrored exit sequence, balanced
//                        kSvc pairing, windows never left open.
//   shadow-isolation     every kShadowSync attributed to the owning
//                        operation; no unresolved kMemFault/kBusFault (a
//                        denied write), in or out of a switch window.
//   mpu-cache-coherence  every kMpuReconfig bumped the MPU's verdict-cache
//                        generation and matches the live region state.
//   call-depth           kFunctionEnter/kFunctionExit LIFO pairing.
std::vector<std::unique_ptr<Automaton>> BuildStandardMonitors(const RvEnv& env);

}  // namespace opec_rv

#endif  // SRC_RV_MONITORS_H_
