// Declarative safety automata over the obs event stream (DESIGN.md §15).
//
// An automaton is declared as named states plus (state × EventKind
// [+ payload guard]) → next-state/violation rules, then compiled once into a
// dense per-(state, kind) transition table. Stepping an event is one table
// lookup plus, for the rare guarded cells, a short first-match-wins rule
// scan — cheap enough to leave attached to every campaign job (modeled on
// the table-driven monitors of Linux's RV subsystem).
//
// Guards may carry monitor-local context (operation stacks, generation
// counters) in the closures they capture; a guard must only mutate its
// context when it matches (returns true), because a failing guard falls
// through to the next rule. On a violation the automaton records the message
// and resets to the initial state (running the reset hook so context resets
// with it), so one broken window cannot cascade into a violation storm.

#ifndef SRC_RV_AUTOMATON_H_
#define SRC_RV_AUTOMATON_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/obs/event.h"

namespace opec_rv {

// Dense table width. Guarded by a static_assert in automaton.cc against the
// obs enum so a new EventKind cannot silently fall off the table.
inline constexpr size_t kNumEventKinds = 10;

class Automaton {
 public:
  // Returns true when the rule matches this event. Evaluated in declaration
  // order within a (state, kind) cell; an unguarded rule always matches.
  using Guard = std::function<bool(const opec_obs::Event&)>;

  // Rule target meaning "this event is a violation".
  static constexpr int kViolation = -1;

  explicit Automaton(std::string name) : name_(std::move(name)) {}

  // --- Declaration (before Compile()) ---
  // The first state added is the initial state. `strict` states treat any
  // event with no matching rule as a violation; non-strict states self-loop.
  int AddState(std::string name, bool strict = false);
  void AddRule(int state, opec_obs::EventKind kind, int target, std::string message = "");
  void AddGuardedRule(int state, opec_obs::EventKind kind, Guard guard, int target,
                      std::string message = "");
  // Runs whenever the automaton resets after a violation; clears guard context.
  void SetResetHook(std::function<void()> hook) { reset_hook_ = std::move(hook); }
  // End-of-run check; returns a violation message or "" when clean.
  // `aborted` is true when the run ended in an ExecutionAborted unwind.
  void SetFinishHook(std::function<std::string(bool aborted, int state)> hook) {
    finish_hook_ = std::move(hook);
  }
  void Compile();

  // --- Runtime (after Compile()) ---
  // Consumes one event. Returns true if it violated the automaton; the
  // machine has then already been reset (state + context) and the violation
  // is described by last_violation_message()/last_violation_state().
  bool Step(const opec_obs::Event& event);
  // End-of-run hook; counts and reports like an event violation when it fires.
  bool Finish(bool aborted);

  // --- Inspection ---
  const std::string& name() const { return name_; }
  size_t state_count() const { return states_.size(); }
  const std::string& state_name(int state) const {
    return states_[static_cast<size_t>(state)].name;
  }
  int current_state() const { return state_; }
  // Distinct states seen since construction (the initial state counts).
  size_t visited_states() const;
  uint64_t steps() const { return steps_; }
  uint64_t violations() const { return violations_; }
  const std::string& last_violation_message() const { return last_message_; }
  int last_violation_state() const { return last_state_; }

 private:
  struct StateDef {
    std::string name;
    bool strict = false;
  };
  struct Rule {
    Guard guard;  // null = unconditional
    int target = 0;
    std::string message;
  };
  struct RuleDef {
    int state = 0;
    size_t kind = 0;
    Rule rule;
  };
  struct Cell {
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  void Violate(const std::string& message, int state);

  std::string name_;
  std::vector<StateDef> states_;
  std::vector<RuleDef> rule_defs_;  // cleared by Compile()
  std::vector<Rule> rules_;
  std::vector<Cell> table_;  // state * kNumEventKinds + kind
  bool compiled_ = false;
  std::function<void()> reset_hook_;
  std::function<std::string(bool, int)> finish_hook_;
  bool finished_ = false;

  int state_ = 0;
  uint64_t visited_mask_ = 1;  // bit per state; state 0 visited at birth
  uint64_t steps_ = 0;
  uint64_t violations_ = 0;
  std::string last_message_;
  int last_state_ = 0;
};

}  // namespace opec_rv

#endif  // SRC_RV_AUTOMATON_H_
