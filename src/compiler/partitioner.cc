#include "src/compiler/partitioner.h"

#include "src/support/check.h"

namespace opec_compiler {

using opec_analysis::CallGraph;
using opec_analysis::FunctionResources;
using opec_ir::Function;
using opec_ir::GlobalVariable;
using opec_ir::Module;

PartitionResult PartitionOperations(
    const Module& module, const CallGraph& cg,
    const std::map<const Function*, FunctionResources>& resources, const PartitionConfig& config) {
  PartitionResult result;

  const Function* main_fn = module.FindFunction("main");
  OPEC_CHECK_MSG(main_fn != nullptr, "program has no main function");

  // The stop set: all operation entries (the DFS backtracks when it reaches
  // another operation's entry, Section 4.3).
  std::set<const Function*> entries;
  std::vector<std::pair<const Function*, EntrySpec>> roots;
  // The default operation for main comes first (operation id 0).
  EntrySpec main_spec;
  main_spec.function = "main";
  roots.emplace_back(main_fn, main_spec);
  for (const EntrySpec& spec : config.entries) {
    const Function* fn = module.FindFunction(spec.function);
    OPEC_CHECK_MSG(fn != nullptr, "operation entry does not exist: " + spec.function);
    OPEC_CHECK_MSG(!fn->type()->is_variadic(),
                   "operation entry cannot be variadic: " + spec.function);
    OPEC_CHECK_MSG(!fn->is_interrupt_handler(),
                   "operation entry cannot be an interrupt handler: " + spec.function);
    OPEC_CHECK_MSG(fn != main_fn, "main is implicitly the default operation");
    entries.insert(fn);
    roots.emplace_back(fn, spec);
  }

  for (const auto& [root, spec] : roots) {
    PartitionedOperation op;
    op.id = static_cast<int>(result.operations.size());
    op.entry = root;
    op.spec = spec;
    op.members = cg.Reachable(root, entries);
    for (const Function* member : op.members) {
      auto it = resources.find(member);
      if (it == resources.end()) {
        continue;
      }
      const FunctionResources& res = it->second;
      for (const GlobalVariable* gv : res.AllGlobals()) {
        if (gv->is_const()) {
          op.ro_globals.insert(gv);
        } else {
          op.globals.insert(gv);
        }
      }
      op.peripherals.insert(res.peripherals.begin(), res.peripherals.end());
      op.core_peripherals.insert(res.core_peripherals.begin(), res.core_peripherals.end());
      result.function_ops[member].push_back(op.id);
    }
    result.operations.push_back(std::move(op));
  }
  return result;
}

}  // namespace opec_compiler
