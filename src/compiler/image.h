// Program-image modeling: code-size accounting (the readelf stand-in for
// Figure 9 / Tables 1-2), flash rodata placement, and the loader that writes
// initial global data into the machine.

#ifndef SRC_COMPILER_IMAGE_H_
#define SRC_COMPILER_IMAGE_H_

#include "src/compiler/instrument.h"
#include "src/compiler/policy.h"
#include "src/hw/machine.h"
#include "src/ir/module.h"
#include "src/rt/address_assignment.h"

namespace opec_compiler {

// Thumb-2 code-size model: ~4 bytes per IR node plus a 16-byte
// prologue/epilogue per function.
uint32_t FunctionCodeBytes(const opec_ir::Function& fn);
uint32_t ModuleCodeBytes(const opec_ir::Module& module);

// Monitor code footprint (Section 6.2 reports ~8.4 KB of privileged code).
uint32_t MonitorCodeBytes(size_t num_operations);

// Per-operation metadata flash footprint: MPU configs, peripheral lists,
// sanitization values, stack info, relocation-table initializers.
uint32_t PolicyMetadataBytes(const Policy& policy);

// A vanilla (no isolation) image: every global laid out sequentially, full
// stack at the top of SRAM, everything privileged.
struct VanillaImage {
  opec_rt::AddressAssignment layout;
  MemoryAccounting accounting;
};
VanillaImage BuildVanillaImage(const opec_ir::Module& module, opec_hw::Board board,
                               uint32_t stack_size = 16 * 1024);

// Assigns flash addresses to const globals (after the code) and fills the
// policy's code/metadata accounting. Called by the OPEC compile driver after
// instrumentation.
void FinishOpecImage(const opec_ir::Module& module, const InstrumentStats& stats,
                     opec_hw::Board board, Policy* policy, opec_rt::AddressAssignment* layout);

// Writes every placed global's initial bytes into the machine (flash for
// const globals, SRAM otherwise). Unset initial bytes are zero.
void LoadGlobals(opec_hw::Machine& machine, const opec_ir::Module& module,
                 const opec_rt::AddressAssignment& layout);

}  // namespace opec_compiler

#endif  // SRC_COMPILER_IMAGE_H_
