#include "src/compiler/policy.h"

#include "src/support/text.h"

namespace opec_compiler {

using opec_support::HexAddr;
using opec_support::StrPrintf;

std::string Policy::ToText() const {
  std::string out = "# OPEC operation policy\n";
  out += StrPrintf("stack: base=%s top=%s subregion=%u\n", HexAddr(stack.base).c_str(),
                   HexAddr(stack.top).c_str(), stack.subregion_size());
  out += StrPrintf("public_data: base=%s size=%u\n", HexAddr(public_base).c_str(), public_size);
  out += StrPrintf("reloc_table: base=%s entries=%zu\n", HexAddr(reloc_table_base).c_str(),
                   externals.size());

  out += StrPrintf("\nexternals (%zu):\n", externals.size());
  for (size_t i = 0; i < externals.size(); ++i) {
    const ExternalVar& ev = externals[i];
    out += StrPrintf("  [%zu] %-24s public=%s reloc=%s size=%u ptr_fields=%zu", i,
                     ev.gv->name().c_str(), HexAddr(ev.public_addr).c_str(),
                     HexAddr(ev.reloc_entry_addr).c_str(), ev.size,
                     ev.pointer_field_offsets.size());
    if (ev.sanitized) {
      out += StrPrintf(" sanitize=[%u,%u]/%u", ev.san_min, ev.san_max, ev.elem_size);
    }
    out += "\n";
  }

  out += StrPrintf("\noperations (%zu):\n", operations.size());
  for (const OperationPolicy& op : operations) {
    out += StrPrintf("  op %d %s entry=%s members=%zu globals=%zu\n", op.id, op.name.c_str(),
                     op.entry.c_str(), op.members.size(), op.needed_globals.size());
    if (op.has_section) {
      out += StrPrintf("    section: base=%s size=2^%u payload=%u shadows=%zu\n",
                       HexAddr(op.section_base).c_str(), op.section_size_log2,
                       op.section_payload, op.shadows.size());
    }
    for (const auto& [base, size] : op.periph_ranges) {
      out += StrPrintf("    periph range: %s +%u\n", HexAddr(base).c_str(), size);
    }
    for (const PeriphRegion& r : op.periph_regions) {
      out += StrPrintf("    periph MPU window: %s size=2^%u\n", HexAddr(r.base).c_str(),
                       r.size_log2);
    }
    if (op.virtualized) {
      out += "    (peripheral regions virtualized: demand-mapped round-robin)\n";
    }
    for (const std::string& name : op.core_periph_names) {
      out += "    core peripheral (emulated): " + name + "\n";
    }
    for (const auto& [arg, size] : op.pointer_arg_sizes) {
      out += StrPrintf("    stack info: arg %d points to %u bytes\n", arg, size);
    }
  }

  out += "\naccounting:\n";
  out += StrPrintf("  flash: app=%u monitor=%u metadata=%u rodata=%u total=%u\n",
                   accounting.flash_app_code, accounting.flash_monitor_code,
                   accounting.flash_metadata, accounting.flash_rodata,
                   accounting.flash_total());
  out += StrPrintf("  sram: public=%u sections=%u reloc=%u monitor=%u stack=%u total=%u\n",
                   accounting.sram_public, accounting.sram_sections, accounting.sram_reloc,
                   accounting.sram_monitor, accounting.sram_stack, accounting.sram_total());
  return out;
}

}  // namespace opec_compiler
