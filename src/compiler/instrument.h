// Code instrumentation (Section 4.4): rewrites the module in place so that
//   (1) every access to an external (shared) global goes through its
//       relocation-table pointer, which the monitor repoints to the current
//       operation's shadow copy at switch time, and
//   (2) every call site of an operation entry function is marked with the
//       operation id — the IR-level equivalent of the SVC instructions the
//       paper inserts before and after the call site.

#ifndef SRC_COMPILER_INSTRUMENT_H_
#define SRC_COMPILER_INSTRUMENT_H_

#include "src/compiler/policy.h"
#include "src/ir/module.h"

namespace opec_compiler {

struct InstrumentStats {
  int rewritten_global_accesses = 0;
  int instrumented_call_sites = 0;
};

InstrumentStats InstrumentModule(opec_ir::Module& module, const Policy& policy);

}  // namespace opec_compiler

#endif  // SRC_COMPILER_INSTRUMENT_H_
