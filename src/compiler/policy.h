// The operation policy: everything OPEC-Compiler hands to OPEC-Monitor —
// per-operation membership, resources, data-section layout, shadow placement,
// MPU configurations, peripheral allowlists, stack info and sanitization
// ranges (Sections 4.3-4.4).

#ifndef SRC_COMPILER_POLICY_H_
#define SRC_COMPILER_POLICY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/hw/mpu.h"
#include "src/ir/module.h"

namespace opec_compiler {

// An external (shared) global variable: accessed by two or more operations,
// reached through the relocation table, with one shadow copy per needing
// operation (Section 4.4, "Operation Data Section").
struct ExternalVar {
  const opec_ir::GlobalVariable* gv = nullptr;
  uint32_t public_addr = 0;       // the original copy, in the public data section
  uint32_t reloc_entry_addr = 0;  // 4-byte pointer slot in the relocation table
  uint32_t size = 0;
  // Byte offsets of pointer-typed fields within the variable, recorded so the
  // monitor can redirect pointers into shadow sections on operation switch
  // (Sections 4.2 and 5.3).
  std::vector<uint32_t> pointer_field_offsets;
  // Sanitization (element-wise over elem_size-sized little-endian elements).
  bool sanitized = false;
  uint32_t san_min = 0;
  uint32_t san_max = 0;
  uint32_t elem_size = 4;
};

// A shadow copy of external variable `var_index` placed at `addr` inside some
// operation's data section.
struct ShadowPlacement {
  int var_index = -1;
  uint32_t addr = 0;
};

// An MPU-compatible window covering (part of) a peripheral range.
struct PeriphRegion {
  uint32_t base = 0;
  uint8_t size_log2 = 0;
};

struct OperationPolicy {
  int id = -1;
  std::string name;
  std::string entry;  // entry function name
  std::set<const opec_ir::Function*> members;

  // All writable globals this operation needs (internal + external).
  std::set<const opec_ir::GlobalVariable*> needed_globals;
  // Read-only (const) globals it touches; these live in flash, unshadowed.
  std::set<const opec_ir::GlobalVariable*> needed_ro_globals;

  // This operation's data section (one MPU region). Operations needing no
  // writable data have no section.
  bool has_section = false;
  uint32_t section_base = 0;
  uint8_t section_size_log2 = 0;
  uint32_t section_payload = 0;  // bytes actually used (rest is MPU fragment)

  std::vector<ShadowPlacement> shadows;  // shadow copies inside the section

  // Peripherals: exact allowlisted ranges, plus the merged MPU-aligned
  // windows. When the windows exceed the four reserved regions the monitor
  // virtualizes them on demand (Section 5.2).
  std::set<std::string> periph_names;
  std::set<std::string> core_periph_names;
  std::vector<std::pair<uint32_t, uint32_t>> periph_ranges;  // (base, size)
  std::vector<PeriphRegion> periph_regions;
  bool virtualized = false;

  // Stack information for the entry's pointer arguments.
  std::map<int, uint32_t> pointer_arg_sizes;

  // True when any member function uses the heap allocator: the whole heap
  // section is accessible to this operation (Section 5.2, "Heap").
  bool uses_heap = false;
};

struct StackPolicy {
  uint32_t base = 0;       // lowest address
  uint32_t top = 0;        // one past the highest address
  uint8_t size_log2 = 0;   // region size
  uint32_t subregion_size() const { return (1u << size_log2) / 8; }
};

// Flash/SRAM accounting of the built image, for Figure 9 / Table 2.
struct MemoryAccounting {
  uint32_t flash_app_code = 0;
  uint32_t flash_monitor_code = 0;
  uint32_t flash_metadata = 0;
  uint32_t flash_rodata = 0;
  uint32_t flash_total() const {
    return flash_app_code + flash_monitor_code + flash_metadata + flash_rodata;
  }
  uint32_t sram_public = 0;       // public data section (original externals)
  uint32_t sram_internal = 0;     // internal vars inside op sections
  uint32_t sram_sections = 0;     // op data sections incl. shadows + fragments
  uint32_t sram_reloc = 0;
  uint32_t sram_monitor = 0;
  uint32_t sram_stack = 0;
  uint32_t sram_heap = 0;
  uint32_t sram_total() const {
    return sram_public + sram_sections + sram_reloc + sram_monitor + sram_stack + sram_heap;
  }
};

struct Policy {
  std::vector<OperationPolicy> operations;
  int default_op_id = 0;  // the function `main`'s default operation
  std::vector<ExternalVar> externals;
  StackPolicy stack;

  uint32_t public_base = 0;
  uint32_t public_size = 0;
  uint32_t reloc_table_base = 0;
  uint32_t monitor_data_base = 0;
  uint32_t monitor_data_size = 0;
  // Heap section (0 size = program has no heap).
  uint32_t heap_base = 0;
  uint8_t heap_size_log2 = 0;
  uint32_t heap_size() const { return heap_size_log2 == 0 ? 0 : (1u << heap_size_log2); }

  // Fixed regions shared by every operation.
  opec_hw::MpuRegionConfig background_region;  // region 0: 1 GB unpriv-RO
  opec_hw::MpuRegionConfig code_region;        // region 1: app code, executable

  MemoryAccounting accounting;

  // Which operations each function belongs to (functions can be shared).
  std::map<const opec_ir::Function*, std::vector<int>> function_ops;

  int FindExternalIndex(const opec_ir::GlobalVariable* gv) const {
    for (size_t i = 0; i < externals.size(); ++i) {
      if (externals[i].gv == gv) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
  const OperationPolicy* FindOperationByEntry(const std::string& entry) const {
    for (const OperationPolicy& op : operations) {
      if (op.entry == entry) {
        return &op;
      }
    }
    return nullptr;
  }

  // Human-readable policy file (the compiler's generated artifact).
  std::string ToText() const;
};

}  // namespace opec_compiler

#endif  // SRC_COMPILER_POLICY_H_
