// Developer-provided inputs to OPEC-Compiler (Figure 5): the operation entry
// function list, the stack information for entry arguments, and the
// sanitization value ranges for safety-critical globals.

#ifndef SRC_COMPILER_PARTITION_CONFIG_H_
#define SRC_COMPILER_PARTITION_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace opec_compiler {

// One operation entry function (a root of a call-graph subtree).
struct EntrySpec {
  std::string function;
  // Stack information (Section 5.2): for each pointer-type parameter index,
  // the byte size of the buffer it points to, so the monitor can relocate the
  // buffer onto the new operation's stack portion. Nested pointers are not
  // supported (matching the prototype's limitation).
  std::map<int, uint32_t> pointer_arg_sizes;
};

// Developer-provided valid value range for a safety-critical global; the
// monitor checks it element-wise before synchronizing shadow copies back
// (Section 5.2, "Before synchronizing, OPEC-Monitor performs data
// sanitization").
struct SanitizeSpec {
  std::string global;
  uint32_t min = 0;
  uint32_t max = 0xFFFFFFFF;
};

struct PartitionConfig {
  std::vector<EntrySpec> entries;
  std::vector<SanitizeSpec> sanitize;
  // Application stack size; must be a power of two (one MPU region), split
  // into 8 sub-regions.
  uint32_t stack_size = 16 * 1024;
  // Heap section size (0 = no heap). Per Section 5.2, the heap lives in a
  // separate section (never copied at switches); an operation whose code uses
  // the allocator is granted the whole heap, demand-mapped like a peripheral.
  uint32_t heap_size = 0;
};

}  // namespace opec_compiler

#endif  // SRC_COMPILER_PARTITION_CONFIG_H_
