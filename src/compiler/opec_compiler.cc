#include "src/compiler/opec_compiler.h"

#include "src/compiler/layout.h"

namespace opec_compiler {

CompileResult CompileOpec(opec_ir::Module& module, const opec_hw::SocDescription& soc,
                          const PartitionConfig& config, opec_hw::Board board) {
  CompileResult result;

  // Stage I, step 1-2: call graph + resource dependencies (Sections 4.1-4.2).
  opec_analysis::PointsToAnalysis pta(module);
  opec_analysis::CallGraph cg = opec_analysis::CallGraph::Build(module, pta);
  result.resources = opec_analysis::ResourceAnalysis::Run(module, pta, soc);
  result.icall_stats = cg.Stats();

  // Step 3: operation partitioning (Section 4.3).
  result.partition = PartitionOperations(module, cg, result.resources, config);

  // Step 4: data layout + policy generation (Section 4.4).
  BuildLayout(module, result.partition, config, soc, board, &result.policy, &result.layout);

  // Step 5: instrumentation + image accounting.
  result.instrument_stats = InstrumentModule(module, result.policy);
  FinishOpecImage(module, result.instrument_stats, board, &result.policy, &result.layout);

  return result;
}

}  // namespace opec_compiler
