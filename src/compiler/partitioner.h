// Operation partitioning (Section 4.3): each developer-listed entry function
// roots an operation containing every function reachable from it in the call
// graph, backtracking at other operation entries; `main` forms the default
// operation. Operations may share functions. Per-operation resources are the
// union of the member functions' resource summaries.

#ifndef SRC_COMPILER_PARTITIONER_H_
#define SRC_COMPILER_PARTITIONER_H_

#include <map>
#include <set>
#include <vector>

#include "src/analysis/call_graph.h"
#include "src/analysis/resource_analysis.h"
#include "src/compiler/partition_config.h"
#include "src/compiler/policy.h"
#include "src/ir/module.h"

namespace opec_compiler {

struct PartitionedOperation {
  int id = -1;
  const opec_ir::Function* entry = nullptr;
  std::set<const opec_ir::Function*> members;
  std::set<const opec_ir::GlobalVariable*> globals;     // writable, needed
  std::set<const opec_ir::GlobalVariable*> ro_globals;  // const, needed
  std::set<std::string> peripherals;
  std::set<std::string> core_peripherals;
  EntrySpec spec;
};

struct PartitionResult {
  std::vector<PartitionedOperation> operations;  // [0] is the default (main) op
  std::map<const opec_ir::Function*, std::vector<int>> function_ops;
};

// Partitions the program. `main` must exist; entry functions must exist, must
// not be variadic, and must not be interrupt handlers.
PartitionResult PartitionOperations(
    const opec_ir::Module& module, const opec_analysis::CallGraph& cg,
    const std::map<const opec_ir::Function*, opec_analysis::FunctionResources>& resources,
    const PartitionConfig& config);

}  // namespace opec_compiler

#endif  // SRC_COMPILER_PARTITIONER_H_
