#include "src/compiler/image.h"

#include "src/hw/address_map.h"
#include "src/support/check.h"

namespace opec_compiler {

using opec_hw::Board;
using opec_hw::BoardSpec;
using opec_hw::GetBoardSpec;
using opec_hw::kFlashBase;
using opec_hw::kSramBase;
using opec_ir::Expr;
using opec_ir::ExprPtr;
using opec_ir::Function;
using opec_ir::GlobalVariable;
using opec_ir::Module;
using opec_ir::Stmt;
using opec_ir::StmtPtr;

namespace {

uint32_t AlignUp(uint32_t v, uint32_t a) { return (v + a - 1) & ~(a - 1); }

uint32_t CountExprNodes(const Expr& e) {
  uint32_t n = 1;
  for (const ExprPtr& op : e.operands) {
    n += CountExprNodes(*op);
  }
  return n;
}

uint32_t CountStmtNodes(const Stmt& s) {
  uint32_t n = 1;
  if (s.lhs != nullptr) {
    n += CountExprNodes(*s.lhs);
  }
  if (s.expr != nullptr) {
    n += CountExprNodes(*s.expr);
  }
  for (const StmtPtr& t : s.body) {
    n += CountStmtNodes(*t);
  }
  for (const StmtPtr& t : s.orelse) {
    n += CountStmtNodes(*t);
  }
  return n;
}

}  // namespace

uint32_t FunctionCodeBytes(const Function& fn) {
  uint32_t nodes = 0;
  for (const StmtPtr& s : fn.body()) {
    nodes += CountStmtNodes(*s);
  }
  return 16 + 4 * nodes;
}

uint32_t ModuleCodeBytes(const Module& module) {
  uint32_t total = 0;
  for (const auto& fn : module.functions()) {
    total += FunctionCodeBytes(*fn);
  }
  return total;
}

uint32_t MonitorCodeBytes(size_t num_operations) {
  // Fixed monitor routines (~8 KB) plus small per-operation dispatch stubs,
  // matching the 8.3-8.6 KB range in Table 1.
  return 8192 + 32 * static_cast<uint32_t>(num_operations);
}

uint32_t PolicyMetadataBytes(const Policy& policy) {
  uint32_t bytes = 0;
  for (const OperationPolicy& op : policy.operations) {
    bytes += 2 * 8;                                                 // fixed regions 0-1
    bytes += 8;                                                     // stack region + SRD plan
    bytes += op.has_section ? 8 : 0;                                // data-section region
    bytes += static_cast<uint32_t>(op.periph_regions.size()) * 8;   // peripheral windows
    bytes += static_cast<uint32_t>(op.periph_ranges.size()) * 8;    // allowlist ranges
    bytes += static_cast<uint32_t>(op.core_periph_names.size()) * 8;
    bytes += static_cast<uint32_t>(op.shadows.size()) * 8;          // sync lists
    bytes += static_cast<uint32_t>(op.pointer_arg_sizes.size()) * 8;  // stack info
  }
  for (const ExternalVar& ev : policy.externals) {
    bytes += 12;  // public addr, reloc slot, size
    bytes += static_cast<uint32_t>(ev.pointer_field_offsets.size()) * 4;
    if (ev.sanitized) {
      bytes += 12;
    }
  }
  return bytes;
}

VanillaImage BuildVanillaImage(const Module& module, Board board, uint32_t stack_size) {
  const BoardSpec spec = GetBoardSpec(board);
  VanillaImage image;

  uint32_t code = ModuleCodeBytes(module);
  image.accounting.flash_app_code = code;

  uint32_t flash_cursor = AlignUp(kFlashBase + code, 64);
  uint32_t sram_cursor = kSramBase;
  for (const auto& g : module.globals()) {
    if (g->is_const()) {
      flash_cursor = AlignUp(flash_cursor, g->type()->alignment());
      image.layout.global_addr[g.get()] = flash_cursor;
      flash_cursor += g->size();
      image.accounting.flash_rodata += g->size();
    } else {
      sram_cursor = AlignUp(sram_cursor, g->type()->alignment());
      image.layout.global_addr[g.get()] = sram_cursor;
      sram_cursor += g->size();
      image.accounting.sram_public += g->size();  // .data/.bss
    }
  }
  OPEC_CHECK_MSG(flash_cursor <= kFlashBase + spec.flash_size, "vanilla image exceeds flash");

  uint32_t sram_end = kSramBase + spec.sram_size;
  image.layout.stack_top = sram_end;
  image.layout.stack_base = sram_end - stack_size;
  image.accounting.sram_stack = stack_size;
  OPEC_CHECK_MSG(image.layout.stack_base >= sram_cursor, "vanilla image exceeds SRAM");
  return image;
}

void FinishOpecImage(const Module& module, const InstrumentStats& stats, Board board,
                     Policy* policy, opec_rt::AddressAssignment* layout) {
  const BoardSpec spec = GetBoardSpec(board);
  // Code accounting on the instrumented module (relocation-table loads are
  // extra instructions) plus the SVC pairs at instrumented call sites.
  policy->accounting.flash_app_code =
      ModuleCodeBytes(module) + 8 * static_cast<uint32_t>(stats.instrumented_call_sites);
  policy->accounting.flash_monitor_code = MonitorCodeBytes(policy->operations.size());
  policy->accounting.flash_metadata = PolicyMetadataBytes(*policy);

  uint32_t flash_cursor = AlignUp(
      kFlashBase + policy->accounting.flash_app_code + policy->accounting.flash_monitor_code +
          policy->accounting.flash_metadata,
      64);
  for (const auto& g : module.globals()) {
    if (!g->is_const()) {
      continue;
    }
    flash_cursor = AlignUp(flash_cursor, g->type()->alignment());
    layout->global_addr[g.get()] = flash_cursor;
    flash_cursor += g->size();
    policy->accounting.flash_rodata += g->size();
  }
  OPEC_CHECK_MSG(flash_cursor <= kFlashBase + spec.flash_size, "OPEC image exceeds flash");
}

void LoadGlobals(opec_hw::Machine& machine, const Module& module,
                 const opec_rt::AddressAssignment& layout) {
  for (const auto& g : module.globals()) {
    uint32_t addr = layout.AddrOf(g.get());
    if (addr == 0) {
      continue;  // externals' shadows etc. are initialized by the monitor
    }
    std::vector<uint8_t> bytes = g->initial_data();
    bytes.resize(g->size(), 0);
    machine.bus().DebugWriteBytes(addr, bytes);
  }
}

}  // namespace opec_compiler
