#include "src/compiler/instrument.h"

#include <map>

#include "src/support/check.h"

namespace opec_compiler {

using opec_ir::Expr;
using opec_ir::ExprKind;
using opec_ir::ExprPtr;
using opec_ir::Function;
using opec_ir::GlobalVariable;
using opec_ir::MakeCast;
using opec_ir::MakeDeref;
using opec_ir::MakeIntConst;
using opec_ir::Module;
using opec_ir::Stmt;
using opec_ir::StmtPtr;
using opec_ir::Type;

namespace {

class Rewriter {
 public:
  Rewriter(Module& module, const Policy& policy, InstrumentStats& stats)
      : module_(module), stats_(stats) {
    for (const ExternalVar& ev : policy.externals) {
      reloc_addr_[ev.gv] = ev.reloc_entry_addr;
    }
    for (const OperationPolicy& op : policy.operations) {
      if (op.id == policy.default_op_id) {
        continue;  // main is not called from guest code
      }
      const Function* fn = module.FindFunction(op.entry);
      OPEC_CHECK(fn != nullptr);
      entry_ops_[fn] = op.id;
    }
  }

  ExprPtr Rewrite(const ExprPtr& e) {
    // Rewrite an external global reference into *(T*)(*(u32*)reloc_entry).
    if (e->kind == ExprKind::kGlobal) {
      auto it = reloc_addr_.find(e->global);
      if (it != reloc_addr_.end()) {
        ++stats_.rewritten_global_accesses;
        const Type* u32 = module_.types().U32();
        ExprPtr entry_ptr =
            MakeCast(module_.types().PointerTo(u32), MakeIntConst(u32, it->second));
        ExprPtr shadow_ptr = MakeCast(module_.types().PointerTo(e->global->type()),
                                      MakeDeref(std::move(entry_ptr)));
        return MakeDeref(std::move(shadow_ptr));
      }
      return e;
    }
    bool changed = false;
    std::vector<ExprPtr> operands;
    operands.reserve(e->operands.size());
    for (const ExprPtr& op : e->operands) {
      ExprPtr r = Rewrite(op);
      changed |= r != op;
      operands.push_back(std::move(r));
    }
    int op_id = -1;
    if (e->kind == ExprKind::kCall) {
      auto it = entry_ops_.find(e->func);
      if (it != entry_ops_.end()) {
        op_id = it->second;
        ++stats_.instrumented_call_sites;
      }
    }
    if (!changed && op_id < 0) {
      return e;
    }
    auto copy = std::make_shared<Expr>(*e);
    copy->operands = std::move(operands);
    if (op_id >= 0) {
      copy->operation_entry_id = op_id;
    }
    return copy;
  }

  StmtPtr Rewrite(const StmtPtr& s) {
    auto copy = std::make_shared<Stmt>(*s);
    bool changed = false;
    if (copy->lhs != nullptr) {
      ExprPtr r = Rewrite(copy->lhs);
      changed |= r != copy->lhs;
      copy->lhs = std::move(r);
    }
    if (copy->expr != nullptr) {
      ExprPtr r = Rewrite(copy->expr);
      changed |= r != copy->expr;
      copy->expr = std::move(r);
    }
    std::vector<StmtPtr> body;
    for (const StmtPtr& t : s->body) {
      StmtPtr r = Rewrite(t);
      changed |= r != t;
      body.push_back(std::move(r));
    }
    copy->body = std::move(body);
    std::vector<StmtPtr> orelse;
    for (const StmtPtr& t : s->orelse) {
      StmtPtr r = Rewrite(t);
      changed |= r != t;
      orelse.push_back(std::move(r));
    }
    copy->orelse = std::move(orelse);
    return changed ? StmtPtr(copy) : s;
  }

 private:
  Module& module_;
  InstrumentStats& stats_;
  std::map<const GlobalVariable*, uint32_t> reloc_addr_;
  std::map<const Function*, int> entry_ops_;
};

}  // namespace

InstrumentStats InstrumentModule(Module& module, const Policy& policy) {
  InstrumentStats stats;
  Rewriter rewriter(module, policy, stats);
  for (const auto& fn : module.functions()) {
    std::vector<StmtPtr> body;
    body.reserve(fn->body().size());
    for (const StmtPtr& s : fn->body()) {
      body.push_back(rewriter.Rewrite(s));
    }
    fn->set_body(std::move(body));
  }
  return stats;
}

}  // namespace opec_compiler
