// Data layout (Section 4.4): classifies globals as internal/external, builds
// the public data section, the relocation table, and the per-operation data
// sections (internal variables + shadow copies), satisfying the MPU's
// power-of-two size/alignment rules with minimal external fragmentation
// (sections sorted by size, descending). Also generates the per-operation
// peripheral MPU windows (adjacent peripherals merged, Section 4.3).

#ifndef SRC_COMPILER_LAYOUT_H_
#define SRC_COMPILER_LAYOUT_H_

#include "src/compiler/partition_config.h"
#include "src/compiler/partitioner.h"
#include "src/compiler/policy.h"
#include "src/hw/soc.h"
#include "src/rt/address_assignment.h"

namespace opec_compiler {

// Rounds up to the next power of two, minimum `floor`.
uint32_t NextPow2(uint32_t v, uint32_t floor = 32);
uint8_t Log2Ceil(uint32_t v);

// Covers [base, base+len) with MPU-legal windows (power-of-two size, size-
// aligned base, >= 32 bytes). Greedy: the largest legal block at each step.
std::vector<PeriphRegion> CoverRangeWithMpuWindows(uint32_t base, uint32_t len);

// Deterministic heap placement: a power-of-two window directly below the
// stack region at the top of SRAM. Guest code (the allocator, emitted at
// authoring time) and the layout both compute the same address from the board
// and the config sizes. Returns the heap base; *out_size is the rounded size.
uint32_t ComputeHeapPlacement(opec_hw::Board board, uint32_t stack_size, uint32_t heap_size,
                              uint32_t* out_size);

// Builds the complete policy + address assignment for an OPEC image.
// Populates everything in Policy except the accounting's code-size fields
// (filled by the image builder).
void BuildLayout(const opec_ir::Module& module, const PartitionResult& partition,
                 const PartitionConfig& config, const opec_hw::SocDescription& soc,
                 opec_hw::Board board, Policy* policy, opec_rt::AddressAssignment* layout);

}  // namespace opec_compiler

#endif  // SRC_COMPILER_LAYOUT_H_
