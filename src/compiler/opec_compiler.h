// OPEC-Compiler driver (Figure 5, Stage I): call-graph generation, resource
// dependency analysis, operation partitioning, data layout, instrumentation
// and image accounting, in one call.

#ifndef SRC_COMPILER_OPEC_COMPILER_H_
#define SRC_COMPILER_OPEC_COMPILER_H_

#include <memory>

#include "src/analysis/call_graph.h"
#include "src/analysis/points_to.h"
#include "src/analysis/resource_analysis.h"
#include "src/compiler/image.h"
#include "src/compiler/partition_config.h"
#include "src/compiler/partitioner.h"
#include "src/compiler/policy.h"
#include "src/hw/soc.h"
#include "src/rt/address_assignment.h"

namespace opec_compiler {

struct CompileResult {
  Policy policy;
  opec_rt::AddressAssignment layout;
  PartitionResult partition;
  opec_analysis::ICallStats icall_stats;
  InstrumentStats instrument_stats;
  // Per-function resource summaries from before instrumentation (metrics use
  // these for PT/ET).
  std::map<const opec_ir::Function*, opec_analysis::FunctionResources> resources;
};

// Compiles `module` for OPEC. The module is mutated (relocation-table
// rewriting + SVC call-site marking); analyses run on the pristine input.
CompileResult CompileOpec(opec_ir::Module& module, const opec_hw::SocDescription& soc,
                          const PartitionConfig& config, opec_hw::Board board);

}  // namespace opec_compiler

#endif  // SRC_COMPILER_OPEC_COMPILER_H_
