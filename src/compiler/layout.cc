#include "src/compiler/layout.h"

#include <algorithm>

#include "src/hw/address_map.h"
#include "src/support/check.h"

namespace opec_compiler {

using opec_hw::Board;
using opec_hw::BoardSpec;
using opec_hw::GetBoardSpec;
using opec_hw::kSramBase;
using opec_hw::PeripheralInfo;
using opec_hw::SocDescription;
using opec_ir::GlobalVariable;
using opec_ir::Module;
using opec_ir::Type;
using opec_ir::TypeKind;

uint32_t NextPow2(uint32_t v, uint32_t floor) {
  uint32_t p = floor;
  while (p < v) {
    OPEC_CHECK_MSG(p <= 0x80000000u, "section too large for a pow2 MPU region");
    p <<= 1;
  }
  return p;
}

uint8_t Log2Ceil(uint32_t v) {
  uint8_t l = 0;
  uint32_t p = 1;
  while (p < v) {
    p <<= 1;
    ++l;
  }
  return l;
}

namespace {

uint32_t AlignUp(uint32_t v, uint32_t a) { return (v + a - 1) & ~(a - 1); }

// Collects byte offsets of pointer-typed fields (recursively through structs
// and arrays of structs) — Section 4.2's "pointer fields of a global
// variable", used for shadow-pointer redirection at operation switch.
void CollectPointerOffsets(const Type* type, uint32_t base, std::vector<uint32_t>* out) {
  switch (type->kind()) {
    case TypeKind::kPointer:
      out->push_back(base);
      return;
    case TypeKind::kStruct:
      for (const opec_ir::StructField& f : type->fields()) {
        CollectPointerOffsets(f.type, base + f.offset, out);
      }
      return;
    case TypeKind::kArray:
      for (uint32_t i = 0; i < type->count(); ++i) {
        CollectPointerOffsets(type->element(), base + i * type->element()->size(), out);
      }
      return;
    default:
      return;
  }
}

uint32_t SanitizeElemSize(const Type* type) {
  if (type->IsArray()) {
    return std::min<uint32_t>(type->element()->size(), 4);
  }
  return std::min<uint32_t>(type->size(), 4);
}

}  // namespace

uint32_t ComputeHeapPlacement(Board board, uint32_t stack_size, uint32_t heap_size,
                              uint32_t* out_size) {
  const BoardSpec spec = GetBoardSpec(board);
  uint32_t stack = NextPow2(stack_size, 256);
  uint32_t heap = NextPow2(heap_size, 256);
  uint32_t sram_end = kSramBase + spec.sram_size;
  uint32_t stack_base = (sram_end - stack) & ~(stack - 1);
  uint32_t heap_base = (stack_base - heap) & ~(heap - 1);
  if (out_size != nullptr) {
    *out_size = heap;
  }
  return heap_base;
}

std::vector<PeriphRegion> CoverRangeWithMpuWindows(uint32_t base, uint32_t len) {
  std::vector<PeriphRegion> out;
  uint32_t cursor = base;
  uint32_t end = base + len;
  while (cursor < end) {
    // Largest power of two that divides the cursor address.
    uint32_t align_block = cursor == 0 ? 0x80000000u : (cursor & (0u - cursor));
    uint32_t remaining = end - cursor;
    uint32_t block = std::min(align_block, 0x80000000u);
    while (block > remaining && block > 32) {
      block >>= 1;
    }
    if (block < 32) {
      block = 32;  // minimum region: may over-cover slightly at the tail
    }
    // Re-align the cursor down if the minimum block over-covers alignment.
    uint32_t aligned_base = cursor & ~(block - 1);
    out.push_back({aligned_base, Log2Ceil(block)});
    cursor = aligned_base + block;
  }
  return out;
}

void BuildLayout(const Module& module, const PartitionResult& partition,
                 const PartitionConfig& config, const SocDescription& soc, Board board,
                 Policy* policy, opec_rt::AddressAssignment* layout) {
  const BoardSpec spec = GetBoardSpec(board);
  policy->operations.clear();
  policy->externals.clear();
  policy->function_ops = partition.function_ops;
  policy->default_op_id = 0;

  // --- Classify writable globals ---
  std::map<const GlobalVariable*, std::vector<int>> accessors;
  for (const PartitionedOperation& op : partition.operations) {
    for (const GlobalVariable* gv : op.globals) {
      accessors[gv].push_back(op.id);
    }
  }
  std::vector<const GlobalVariable*> externals;
  std::map<const GlobalVariable*, int> internal_owner;  // gv -> op id
  std::vector<const GlobalVariable*> internals;         // declaration order
  std::vector<const GlobalVariable*> unused;            // not accessed by any operation
  for (const auto& g : module.globals()) {
    if (g->is_const()) {
      continue;
    }
    auto it = accessors.find(g.get());
    if (it == accessors.end()) {
      unused.push_back(g.get());
    } else if (it->second.size() >= 2) {
      externals.push_back(g.get());
    } else {
      internal_owner[g.get()] = it->second[0];
      internals.push_back(g.get());
    }
  }

  // --- SRAM cursor ---
  uint32_t cursor = kSramBase;

  // Public data section: original copies of external variables, plus globals
  // no operation touches.
  policy->public_base = cursor;
  for (const GlobalVariable* gv : externals) {
    cursor = AlignUp(cursor, gv->type()->alignment());
    ExternalVar ev;
    ev.gv = gv;
    ev.public_addr = cursor;
    ev.size = gv->size();
    CollectPointerOffsets(gv->type(), 0, &ev.pointer_field_offsets);
    for (const SanitizeSpec& san : config.sanitize) {
      if (san.global == gv->name()) {
        ev.sanitized = true;
        ev.san_min = san.min;
        ev.san_max = san.max;
        ev.elem_size = SanitizeElemSize(gv->type());
      }
    }
    policy->externals.push_back(ev);
    layout->global_addr[gv] = cursor;
    cursor += gv->size();
  }
  for (const GlobalVariable* gv : unused) {
    cursor = AlignUp(cursor, gv->type()->alignment());
    layout->global_addr[gv] = cursor;
    cursor += gv->size();
  }
  policy->public_size = cursor - policy->public_base;
  policy->accounting.sram_public = policy->public_size;

  // Monitor data: operation contexts + bookkeeping, privileged-only. Modeled
  // as 64 bytes per operation plus a fixed 512-byte core.
  cursor = AlignUp(cursor, 8);
  policy->monitor_data_base = cursor;
  policy->monitor_data_size = 512 + 64 * static_cast<uint32_t>(partition.operations.size());
  cursor += policy->monitor_data_size;
  policy->accounting.sram_monitor = policy->monitor_data_size;

  // Relocation table: one 4-byte pointer slot per external variable,
  // privileged-write / unprivileged-read.
  cursor = AlignUp(cursor, 4);
  policy->reloc_table_base = cursor;
  for (size_t i = 0; i < policy->externals.size(); ++i) {
    policy->externals[i].reloc_entry_addr = cursor + static_cast<uint32_t>(i) * 4;
  }
  cursor += static_cast<uint32_t>(policy->externals.size()) * 4;
  policy->accounting.sram_reloc = static_cast<uint32_t>(policy->externals.size()) * 4;

  // --- Per-operation policies and data sections ---
  struct SectionPlan {
    int op_index;
    uint32_t payload = 0;
    uint32_t pow2 = 0;
  };
  std::vector<SectionPlan> plans;

  for (const PartitionedOperation& pop : partition.operations) {
    OperationPolicy op;
    op.id = pop.id;
    op.entry = pop.entry->name();
    op.name = "op_" + op.entry;
    op.members = pop.members;
    op.needed_globals = pop.globals;
    op.needed_ro_globals = pop.ro_globals;
    op.periph_names = pop.peripherals;
    op.core_periph_names = pop.core_peripherals;
    op.pointer_arg_sizes = pop.spec.pointer_arg_sizes;

    // Section payload: internal variables owned by this op + one shadow per
    // needed external. Offsets assigned when the base is known. Both walks
    // run in declaration order: iterating the pointer-keyed sets here made
    // intra-section placement follow heap-allocation order, so the same app
    // laid out differently depending on what was built earlier in-process.
    uint32_t payload = 0;
    for (const GlobalVariable* gv : internals) {
      if (internal_owner[gv] == op.id) {
        payload = AlignUp(payload, gv->type()->alignment()) + gv->size();
      }
    }
    for (const GlobalVariable* gv : externals) {
      if (pop.globals.count(gv) != 0) {
        payload = AlignUp(payload, gv->type()->alignment()) + gv->size();
      }
    }
    op.section_payload = payload;
    op.has_section = payload > 0;

    // Peripheral ranges: resolve names via the datasheet, sort by base,
    // merge adjacent (Section 4.3), then produce MPU windows.
    std::vector<const PeripheralInfo*> infos;
    for (const std::string& name : pop.peripherals) {
      const PeripheralInfo* info = soc.FindByName(name);
      OPEC_CHECK_MSG(info != nullptr, "peripheral not in datasheet: " + name);
      infos.push_back(info);
    }
    std::sort(infos.begin(), infos.end(),
              [](const PeripheralInfo* a, const PeripheralInfo* b) { return a->base < b->base; });
    for (const PeripheralInfo* info : infos) {
      if (!op.periph_ranges.empty() &&
          op.periph_ranges.back().first + op.periph_ranges.back().second == info->base) {
        op.periph_ranges.back().second += info->size;  // merge adjacent
      } else {
        op.periph_ranges.emplace_back(info->base, info->size);
      }
    }
    for (const auto& [base, size] : op.periph_ranges) {
      std::vector<PeriphRegion> windows = CoverRangeWithMpuWindows(base, size);
      op.periph_regions.insert(op.periph_regions.end(), windows.begin(), windows.end());
    }
    // Four MPU regions (4..7) are reserved for peripherals; beyond that the
    // monitor virtualizes them on demand (Section 5.2).
    op.virtualized = op.periph_regions.size() > 4;

    policy->operations.push_back(std::move(op));
    if (payload > 0) {
      plans.push_back({pop.id, payload, NextPow2(payload)});
    }
  }

  // Place sections in descending size order to reduce external fragments
  // (Section 4.4, "Operation Data Section").
  std::sort(plans.begin(), plans.end(),
            [](const SectionPlan& a, const SectionPlan& b) { return a.pow2 > b.pow2; });
  uint32_t sections_total = 0;
  for (const SectionPlan& plan : plans) {
    OperationPolicy& op = policy->operations[static_cast<size_t>(plan.op_index)];
    cursor = AlignUp(cursor, plan.pow2);
    op.section_base = cursor;
    op.section_size_log2 = Log2Ceil(plan.pow2);
    cursor += plan.pow2;
    sections_total += plan.pow2;

    // Assign addresses inside the section: internal variables first, then
    // shadow copies — in the same declaration order as the payload walk.
    uint32_t offset = 0;
    for (const GlobalVariable* gv : internals) {
      if (internal_owner[gv] == op.id) {
        offset = AlignUp(offset, gv->type()->alignment());
        layout->global_addr[gv] = op.section_base + offset;
        offset += gv->size();
        policy->accounting.sram_internal += gv->size();
      }
    }
    for (const GlobalVariable* gv : externals) {
      if (op.needed_globals.count(gv) == 0) {
        continue;
      }
      int ext_index = policy->FindExternalIndex(gv);
      OPEC_CHECK(ext_index >= 0);
      offset = AlignUp(offset, gv->type()->alignment());
      op.shadows.push_back({ext_index, op.section_base + offset});
      offset += gv->size();
    }
    OPEC_CHECK(offset == plan.payload);
  }
  policy->accounting.sram_sections = sections_total;

  // --- Heap: one power-of-two section, demand-mapped per operation ---
  if (config.heap_size > 0) {
    uint32_t heap_size = 0;
    uint32_t heap_base = ComputeHeapPlacement(board, config.stack_size, config.heap_size,
                                              &heap_size);
    OPEC_CHECK_MSG(heap_base >= cursor, "SRAM exhausted: data sections collide with the heap");
    policy->heap_base = heap_base;
    policy->heap_size_log2 = Log2Ceil(heap_size);
    policy->accounting.sram_heap = heap_size;
    layout->heap_base = policy->heap_base;
    layout->heap_size = heap_size;
    // An operation uses the heap when the allocator is among its members.
    for (OperationPolicy& op : policy->operations) {
      for (const opec_ir::Function* fn : op.members) {
        if (fn->name() == "malloc" || fn->name() == "free") {
          op.uses_heap = true;
        }
      }
    }
  }

  // --- Stack: one power-of-two region at the top of SRAM ---
  uint32_t stack_size = NextPow2(config.stack_size, 256);
  uint32_t sram_end = kSramBase + spec.sram_size;
  uint32_t stack_base = (sram_end - stack_size) & ~(stack_size - 1);
  OPEC_CHECK_MSG(stack_base >= cursor, "SRAM exhausted: data sections collide with the stack");
  policy->stack.base = stack_base;
  policy->stack.top = stack_base + stack_size;
  policy->stack.size_log2 = Log2Ceil(stack_size);
  policy->accounting.sram_stack = stack_size;

  layout->stack_base = stack_base;
  layout->stack_top = stack_base + stack_size;

  // --- Fixed MPU regions ---
  // Region 0: the lower 1 GB (code + SRAM) readable at both levels, writable
  // only when privileged ("Region 0 sets all memory ranges as read-only",
  // Section 5.2 — peripherals are excluded so unprivileged peripheral access
  // faults and triggers virtualization).
  policy->background_region = {true, 0x0, 30, 0, opec_hw::AccessPerm::kPrivRwUnprivRo, true};
  // Region 1: application code, executable.
  policy->code_region = {true, opec_hw::kFlashBase, Log2Ceil(spec.flash_size), 0,
                         opec_hw::AccessPerm::kReadOnly, false};
}

}  // namespace opec_compiler
