// Machine: the emulated microcontroller — MPU + bus + privilege state + cycle
// counter. The execution engine (src/rt) drives it; the monitor (src/monitor)
// manipulates it from "privileged" host code.

#ifndef SRC_HW_MACHINE_H_
#define SRC_HW_MACHINE_H_

#include <cstdint>

#include "src/hw/bus.h"
#include "src/hw/mpu.h"
#include "src/hw/soc.h"

namespace opec_hw {

class Machine {
 public:
  explicit Machine(Board board)
      : spec_(GetBoardSpec(board)), bus_(spec_, &mpu_, &cycles_) {
    mpu_.set_cycle_counter(&cycles_);
  }

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const BoardSpec& board() const { return spec_; }
  Mpu& mpu() { return mpu_; }
  const Mpu& mpu() const { return mpu_; }
  Bus& bus() { return bus_; }

  // Current execution privilege (Section 2.1). The monitor drops this before
  // running application code and raises it inside exception handlers.
  bool privileged() const { return privileged_; }
  void set_privileged(bool privileged) { privileged_ = privileged; }

  uint64_t cycles() const { return cycles_; }
  void AddCycles(uint64_t n) { cycles_ += n; }

  // Snapshot support (DESIGN.md §13): cycle counter, privilege level, MPU
  // registers, then the bus (memories + attached devices). LoadState requires
  // a machine of the same board with the same devices attached.
  void SaveState(StateWriter& w) const {
    w.U64(cycles_);
    w.Bool(privileged_);
    mpu_.SaveState(w);
    bus_.SaveState(w);
  }
  // With `skip_memory`, the flash/SRAM images inside the bus payload are
  // skipped — the caller restored them via Bus::RestoreMemoryBaseline first.
  void LoadState(StateReader& r, bool skip_memory = false) {
    cycles_ = r.U64();
    privileged_ = r.Bool();
    mpu_.LoadState(r);
    bus_.LoadState(r, skip_memory);
  }

 private:
  BoardSpec spec_;
  uint64_t cycles_ = 0;
  Mpu mpu_;
  Bus bus_;
  bool privileged_ = true;  // reset state: privileged thread mode
};

}  // namespace opec_hw

#endif  // SRC_HW_MACHINE_H_
