// Memory-mapped device interface.

#ifndef SRC_HW_DEVICE_H_
#define SRC_HW_DEVICE_H_

#include <cstdint>
#include <string>

#include "src/hw/state_io.h"

namespace opec_hw {

// A memory-mapped peripheral occupying [base, base+size). Register accesses
// are word-granular; devices may report extra cycles (modeling wait states and
// transfer latency) via the `extra_cycles` out-parameter.
class MmioDevice {
 public:
  MmioDevice(std::string name, uint32_t base, uint32_t size)
      : name_(std::move(name)), base_(base), size_(size) {}
  virtual ~MmioDevice() = default;

  const std::string& name() const { return name_; }
  uint32_t base() const { return base_; }
  uint32_t size() const { return size_; }
  bool Contains(uint32_t addr) const { return addr >= base_ && addr - base_ < size_; }

  // Returns false on an invalid register access (surfaces as a bus fault).
  virtual bool Read(uint32_t offset, uint32_t* value, uint64_t* extra_cycles) = 0;
  virtual bool Write(uint32_t offset, uint32_t value, uint64_t* extra_cycles) = 0;

  // Snapshot support (DESIGN.md §13): serialize / restore every piece of
  // mutable device state. Pure virtual on purpose — a device model with
  // unsnapshotted state silently breaks warm-start determinism, so each model
  // must enumerate its state explicitly. LoadState consumes exactly what
  // SaveState produced (the bus checks the payload is fully consumed).
  virtual void SaveState(StateWriter& w) const = 0;
  virtual void LoadState(StateReader& r) = 0;

 private:
  std::string name_;
  uint32_t base_;
  uint32_t size_;
};

}  // namespace opec_hw

#endif  // SRC_HW_DEVICE_H_
