// System bus: routes guest accesses to Flash, SRAM, memory-mapped devices and
// the PPB, enforcing the MPU and privilege rules on every access.

#ifndef SRC_HW_BUS_H_
#define SRC_HW_BUS_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/hw/address_map.h"
#include "src/hw/device.h"
#include "src/hw/fault.h"
#include "src/hw/mpu.h"
#include "src/hw/soc.h"

namespace opec_hw {

class Bus {
 public:
  Bus(const BoardSpec& board, Mpu* mpu, uint64_t* cycles);

  // Registers a device (not owned). Ranges must not overlap.
  void AttachDevice(MmioDevice* device);

  // Guest accesses: subject to PPB privilege rules and the MPU.
  // `size` is 1, 2 or 4 bytes. Defined inline below with a fast path for
  // accesses entirely inside SRAM (the overwhelmingly common case); anything
  // else — flash, PPB, devices, straddles, faults — takes the out-of-line
  // slow path, which performs the identical route/check/fault sequence.
  AccessResult Read(uint32_t addr, uint32_t size, bool privileged);
  AccessResult Write(uint32_t addr, uint32_t size, uint32_t value, bool privileged);

  // Loader/debug access: bypasses the MPU and privilege checks. Used by the
  // image loader, the monitor-internal bookkeeping tests, and assertions.
  bool DebugRead(uint32_t addr, uint32_t size, uint32_t* value);
  bool DebugWrite(uint32_t addr, uint32_t size, uint32_t value);
  void DebugWriteBytes(uint32_t addr, const std::vector<uint8_t>& bytes);
  std::vector<uint8_t> DebugReadBytes(uint32_t addr, uint32_t size);

  // Bulk backing-store copy of `n` bytes between plain-memory ranges
  // (flash/SRAM source, SRAM destination), subject to the same MPU decision a
  // word-by-word copy would see. Returns false — copying nothing — when either
  // range is not entirely plain memory or the MPU denies any part, so callers
  // can fall back to the per-word path and surface identical faults. Charges
  // no cycles; memory-system cost models stay with the caller.
  bool BulkCopy(uint32_t src, uint32_t dst, uint32_t n, bool privileged);

  const BoardSpec& board() const { return board_; }
  uint32_t flash_end() const { return kFlashBase + board_.flash_size; }
  uint32_t sram_end() const { return kSramBase + board_.sram_size; }

  // Forensics: explains why a BusFault-producing access was rejected (PPB
  // privilege rule, flash W^X, region-end overrun, device rejection, unmapped
  // address). Pure observation; performs no device access and charges nothing.
  std::string ExplainFault(uint32_t addr, uint32_t size, AccessKind kind,
                           bool privileged) const;

 private:
  enum class Target { kFlash, kSram, kDevice, kPpb, kUnmapped };
  // Sorted device interval, for O(log n) routing.
  struct DeviceRange {
    uint32_t base = 0;
    uint32_t end = 0;  // exclusive
    MmioDevice* device = nullptr;
  };
  Target Route(uint32_t addr, MmioDevice** device) const;

  AccessResult ReadSlow(uint32_t addr, uint32_t size, bool privileged);
  AccessResult WriteSlow(uint32_t addr, uint32_t size, uint32_t value, bool privileged);

  uint32_t ReadBacking(const std::vector<uint8_t>& mem, uint32_t offset, uint32_t size) const;
  void WriteBacking(std::vector<uint8_t>& mem, uint32_t offset, uint32_t size, uint32_t value);

  AccessResult PpbRead(uint32_t addr, uint32_t size, bool privileged);
  AccessResult PpbWrite(uint32_t addr, uint32_t size, uint32_t value, bool privileged);

  BoardSpec board_;
  Mpu* mpu_;
  uint64_t* cycles_;
  std::vector<uint8_t> flash_;
  std::vector<uint8_t> sram_;
  // Devices sorted by base address; Route binary-searches this and keeps a
  // one-entry last-hit cache (device accesses cluster on one peripheral).
  std::vector<DeviceRange> device_ranges_;
  mutable const DeviceRange* last_device_ = nullptr;
  // Scratch registers for core peripherals we accept writes to but do not
  // decode (SCB, memory-mapped MPU alias; the monitor uses the Mpu object API).
  uint32_t systick_load_ = 0;
  uint32_t systick_ctrl_ = 0;
};

inline uint32_t Bus::ReadBacking(const std::vector<uint8_t>& mem, uint32_t offset,
                                 uint32_t size) const {
  // Backing stores hold guest memory in little-endian order, so on a
  // little-endian host a plain memcpy assembles the value directly.
  if constexpr (std::endian::native == std::endian::little) {
    uint32_t v = 0;
    std::memcpy(&v, mem.data() + offset, size);
    return v;
  }
  uint32_t v = 0;
  for (uint32_t i = 0; i < size; ++i) {
    v |= static_cast<uint32_t>(mem[offset + i]) << (8 * i);
  }
  return v;
}

inline void Bus::WriteBacking(std::vector<uint8_t>& mem, uint32_t offset, uint32_t size,
                              uint32_t value) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(mem.data() + offset, &value, size);
    return;
  }
  for (uint32_t i = 0; i < size; ++i) {
    mem[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

inline AccessResult Bus::Read(uint32_t addr, uint32_t size, bool privileged) {
  // Fast path: the access lies entirely inside SRAM. The slow path repeats
  // the full route/MPU/bounds sequence, so behavior (including the MPU-check-
  // before-bounds-fault ordering for straddles) is identical either way.
  uint32_t off = addr - kSramBase;
  if (off < board_.sram_size && off + size <= board_.sram_size) {
    if (!mpu_->CheckAccess(addr, size, AccessKind::kRead, privileged)) {
      return AccessResult::MemFault();
    }
    return AccessResult::Ok(ReadBacking(sram_, off, size));
  }
  return ReadSlow(addr, size, privileged);
}

inline AccessResult Bus::Write(uint32_t addr, uint32_t size, uint32_t value, bool privileged) {
  uint32_t off = addr - kSramBase;
  if (off < board_.sram_size && off + size <= board_.sram_size) {
    if (!mpu_->CheckAccess(addr, size, AccessKind::kWrite, privileged)) {
      return AccessResult::MemFault();
    }
    WriteBacking(sram_, off, size, value);
    return AccessResult::Ok();
  }
  return WriteSlow(addr, size, value, privileged);
}

}  // namespace opec_hw

#endif  // SRC_HW_BUS_H_
