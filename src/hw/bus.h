// System bus: routes guest accesses to Flash, SRAM, memory-mapped devices and
// the PPB, enforcing the MPU and privilege rules on every access.

#ifndef SRC_HW_BUS_H_
#define SRC_HW_BUS_H_

#include <cstdint>
#include <vector>

#include "src/hw/address_map.h"
#include "src/hw/device.h"
#include "src/hw/fault.h"
#include "src/hw/mpu.h"
#include "src/hw/soc.h"

namespace opec_hw {

class Bus {
 public:
  Bus(const BoardSpec& board, Mpu* mpu, uint64_t* cycles);

  // Registers a device (not owned). Ranges must not overlap.
  void AttachDevice(MmioDevice* device);

  // Guest accesses: subject to PPB privilege rules and the MPU.
  // `size` is 1, 2 or 4 bytes.
  AccessResult Read(uint32_t addr, uint32_t size, bool privileged);
  AccessResult Write(uint32_t addr, uint32_t size, uint32_t value, bool privileged);

  // Loader/debug access: bypasses the MPU and privilege checks. Used by the
  // image loader, the monitor-internal bookkeeping tests, and assertions.
  bool DebugRead(uint32_t addr, uint32_t size, uint32_t* value);
  bool DebugWrite(uint32_t addr, uint32_t size, uint32_t value);
  void DebugWriteBytes(uint32_t addr, const std::vector<uint8_t>& bytes);
  std::vector<uint8_t> DebugReadBytes(uint32_t addr, uint32_t size);

  const BoardSpec& board() const { return board_; }
  uint32_t flash_end() const { return kFlashBase + board_.flash_size; }
  uint32_t sram_end() const { return kSramBase + board_.sram_size; }

 private:
  enum class Target { kFlash, kSram, kDevice, kPpb, kUnmapped };
  Target Route(uint32_t addr, MmioDevice** device) const;

  uint32_t ReadBacking(const std::vector<uint8_t>& mem, uint32_t offset, uint32_t size) const;
  void WriteBacking(std::vector<uint8_t>& mem, uint32_t offset, uint32_t size, uint32_t value);

  AccessResult PpbRead(uint32_t addr, uint32_t size, bool privileged);
  AccessResult PpbWrite(uint32_t addr, uint32_t size, uint32_t value, bool privileged);

  BoardSpec board_;
  Mpu* mpu_;
  uint64_t* cycles_;
  std::vector<uint8_t> flash_;
  std::vector<uint8_t> sram_;
  std::vector<MmioDevice*> devices_;
  // Scratch registers for core peripherals we accept writes to but do not
  // decode (SCB, memory-mapped MPU alias; the monitor uses the Mpu object API).
  uint32_t systick_load_ = 0;
  uint32_t systick_ctrl_ = 0;
};

}  // namespace opec_hw

#endif  // SRC_HW_BUS_H_
