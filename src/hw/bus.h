// System bus: routes guest accesses to Flash, SRAM, memory-mapped devices and
// the PPB, enforcing the MPU and privilege rules on every access.

#ifndef SRC_HW_BUS_H_
#define SRC_HW_BUS_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/hw/address_map.h"
#include "src/hw/device.h"
#include "src/hw/fault.h"
#include "src/hw/mpu.h"
#include "src/hw/soc.h"

namespace opec_hw {

class Bus {
 public:
  Bus(const BoardSpec& board, Mpu* mpu, uint64_t* cycles);

  // Registers a device (not owned). Ranges must not overlap.
  void AttachDevice(MmioDevice* device);

  // Guest accesses: subject to PPB privilege rules and the MPU.
  // `size` is 1, 2 or 4 bytes. Defined inline below with a fast path for
  // accesses entirely inside SRAM (the overwhelmingly common case); anything
  // else — flash, PPB, devices, straddles, faults — takes the out-of-line
  // slow path, which performs the identical route/check/fault sequence.
  AccessResult Read(uint32_t addr, uint32_t size, bool privileged);
  AccessResult Write(uint32_t addr, uint32_t size, uint32_t value, bool privileged);

  // Loader/debug access: bypasses the MPU and privilege checks. Used by the
  // image loader, the monitor-internal bookkeeping tests, and assertions.
  bool DebugRead(uint32_t addr, uint32_t size, uint32_t* value);
  bool DebugWrite(uint32_t addr, uint32_t size, uint32_t value);
  void DebugWriteBytes(uint32_t addr, const std::vector<uint8_t>& bytes);
  std::vector<uint8_t> DebugReadBytes(uint32_t addr, uint32_t size);

  // Bulk backing-store copy of `n` bytes between plain-memory ranges
  // (flash/SRAM source, SRAM destination), subject to the same MPU decision a
  // word-by-word copy would see. Returns false — copying nothing — when either
  // range is not entirely plain memory or the MPU denies any part, so callers
  // can fall back to the per-word path and surface identical faults. Charges
  // no cycles; memory-system cost models stay with the caller.
  bool BulkCopy(uint32_t src, uint32_t dst, uint32_t n, bool privileged);

  // Word-at-a-time guest copy through the full Read/Write path (device
  // windows, PPB rules, MPU checks, modeled side effects) — the fallback for
  // everything BulkCopy declines. Direction-aware: when the destination
  // overlaps the source tail, a forward word loop reads bytes it already
  // overwrote (memcpy-on-overlap corruption), so the copy walks backward in
  // that case, giving memmove semantics on both paths. Returns false on the
  // first faulting access (the copy may be partial, exactly as the
  // word-by-word loop it replaces would have stopped mid-way).
  bool WordCopy(uint32_t src, uint32_t dst, uint32_t n, bool privileged);

  // Snapshot support (DESIGN.md §13): core-peripheral scratch registers,
  // flash and SRAM contents, then every attached device (name-tagged, in
  // address order). LoadState requires the same board and the same device set
  // to be attached; devices are matched by name. With `skip_memory`, the
  // flash/SRAM blobs are skipped instead of copied — the caller restores
  // memory through the dirty-page baseline below.
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r, bool skip_memory = false);

  // Warm-start fast path (DESIGN.md §13.3): keep an in-memory copy of
  // flash+SRAM and start dirty-page tracking; RestoreMemoryBaseline copies
  // back only the pages written since — orders of magnitude less traffic
  // than re-loading full memory images for short campaign jobs.
  void CaptureMemoryBaseline();
  bool has_memory_baseline() const { return !baseline_sram_.empty(); }
  void RestoreMemoryBaseline();

  const BoardSpec& board() const { return board_; }
  uint32_t flash_end() const { return kFlashBase + board_.flash_size; }
  uint32_t sram_end() const { return kSramBase + board_.sram_size; }

  // Verdict-cached engine fast path (src/rt/bytecode): raw backing access for
  // plain-memory accesses whose MPU verdict the caller has already established
  // and cached against Mpu::generation(). Behavioral twins of the Read/Write
  // fast paths minus the MPU check; dirty-page tracking stays exact. Callers
  // must have checked InSram/InFlash for the same (addr, size) first.
  bool InSram(uint32_t addr, uint32_t size) const {
    uint32_t off = addr - kSramBase;
    return off < board_.sram_size && off + size <= board_.sram_size;
  }
  bool InFlash(uint32_t addr, uint32_t size) const {
    uint32_t off = addr - kFlashBase;
    return off < board_.flash_size && off + size <= board_.flash_size;
  }
  uint32_t RawSramRead(uint32_t addr, uint32_t size) const {
    return ReadBacking(sram_, addr - kSramBase, size);
  }
  void RawSramWrite(uint32_t addr, uint32_t size, uint32_t value) {
    uint32_t off = addr - kSramBase;
    WriteBacking(sram_, off, size, value);
    MarkDirty(sram_dirty_, off, size);
  }
  uint32_t RawFlashRead(uint32_t addr, uint32_t size) const {
    return ReadBacking(flash_, addr - kFlashBase, size);
  }

  // Forensics: explains why a BusFault-producing access was rejected (PPB
  // privilege rule, flash W^X, region-end overrun, device rejection, unmapped
  // address). Pure observation; performs no device access and charges nothing.
  std::string ExplainFault(uint32_t addr, uint32_t size, AccessKind kind,
                           bool privileged) const;

 private:
  enum class Target { kFlash, kSram, kDevice, kPpb, kUnmapped };
  // Sorted device interval, for O(log n) routing.
  struct DeviceRange {
    uint32_t base = 0;
    uint32_t end = 0;  // exclusive
    MmioDevice* device = nullptr;
  };
  Target Route(uint32_t addr, MmioDevice** device) const;

  AccessResult ReadSlow(uint32_t addr, uint32_t size, bool privileged);
  AccessResult WriteSlow(uint32_t addr, uint32_t size, uint32_t value, bool privileged);

  uint32_t ReadBacking(const std::vector<uint8_t>& mem, uint32_t offset, uint32_t size) const;
  void WriteBacking(std::vector<uint8_t>& mem, uint32_t offset, uint32_t size, uint32_t value);

  AccessResult PpbRead(uint32_t addr, uint32_t size, bool privileged);
  AccessResult PpbWrite(uint32_t addr, uint32_t size, uint32_t value, bool privileged);

  // Dirty-page granularity for the warm-start memory baseline. 4 KB keeps
  // the maps tiny (SRAM: tens of entries) while a typical campaign job
  // dirties well under 10% of them.
  static constexpr uint32_t kDirtyPageShift = 12;
  static constexpr uint32_t kDirtyPageSize = 1u << kDirtyPageShift;

  static void MarkDirty(std::vector<uint8_t>& map, uint32_t offset, uint32_t len) {
    // Word-sized writes hit one page (two when straddling); BulkCopy ranges
    // need every page in between too.
    uint32_t last = (offset + len - 1) >> kDirtyPageShift;
    for (uint32_t p = offset >> kDirtyPageShift; p <= last; ++p) {
      map[p] = 1;
    }
  }

  BoardSpec board_;
  Mpu* mpu_;
  uint64_t* cycles_;
  std::vector<uint8_t> flash_;
  std::vector<uint8_t> sram_;
  // Per-page write tracking (always on — two byte stores per write) and the
  // baseline images RestoreMemoryBaseline copies clean pages from.
  std::vector<uint8_t> flash_dirty_;
  std::vector<uint8_t> sram_dirty_;
  std::vector<uint8_t> baseline_flash_;
  std::vector<uint8_t> baseline_sram_;
  // Devices sorted by base address; Route binary-searches this and keeps a
  // one-entry last-hit cache (device accesses cluster on one peripheral).
  std::vector<DeviceRange> device_ranges_;
  mutable const DeviceRange* last_device_ = nullptr;
  // Scratch registers for core peripherals we accept writes to but do not
  // decode (SCB, memory-mapped MPU alias; the monitor uses the Mpu object API).
  uint32_t systick_load_ = 0;
  uint32_t systick_ctrl_ = 0;
  // Cycle stamp of the last SYST_CVR write: ARMv7-M clears the current count
  // (and COUNTFLAG) on any write to VAL. -1 encodes the reset state — "a
  // reload happened at cycle 0" — which reproduces the historical free-running
  // counter exactly (VAL(c) = reload - c mod (reload+1)) until the first
  // write.
  int64_t systick_cvr_write_cycle_ = -1;
};

inline uint32_t Bus::ReadBacking(const std::vector<uint8_t>& mem, uint32_t offset,
                                 uint32_t size) const {
  // Backing stores hold guest memory in little-endian order, so on a
  // little-endian host a plain memcpy assembles the value directly.
  if constexpr (std::endian::native == std::endian::little) {
    uint32_t v = 0;
    std::memcpy(&v, mem.data() + offset, size);
    return v;
  }
  uint32_t v = 0;
  for (uint32_t i = 0; i < size; ++i) {
    v |= static_cast<uint32_t>(mem[offset + i]) << (8 * i);
  }
  return v;
}

inline void Bus::WriteBacking(std::vector<uint8_t>& mem, uint32_t offset, uint32_t size,
                              uint32_t value) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(mem.data() + offset, &value, size);
    return;
  }
  for (uint32_t i = 0; i < size; ++i) {
    mem[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

inline AccessResult Bus::Read(uint32_t addr, uint32_t size, bool privileged) {
  // Fast path: the access lies entirely inside SRAM. The slow path repeats
  // the full route/MPU/bounds sequence, so behavior (including the MPU-check-
  // before-bounds-fault ordering for straddles) is identical either way.
  uint32_t off = addr - kSramBase;
  if (off < board_.sram_size && off + size <= board_.sram_size) {
    if (!mpu_->CheckAccess(addr, size, AccessKind::kRead, privileged)) {
      return AccessResult::MemFault();
    }
    return AccessResult::Ok(ReadBacking(sram_, off, size));
  }
  return ReadSlow(addr, size, privileged);
}

inline AccessResult Bus::Write(uint32_t addr, uint32_t size, uint32_t value, bool privileged) {
  uint32_t off = addr - kSramBase;
  if (off < board_.sram_size && off + size <= board_.sram_size) {
    if (!mpu_->CheckAccess(addr, size, AccessKind::kWrite, privileged)) {
      return AccessResult::MemFault();
    }
    WriteBacking(sram_, off, size, value);
    MarkDirty(sram_dirty_, off, size);
    return AccessResult::Ok();
  }
  return WriteSlow(addr, size, value, privileged);
}

}  // namespace opec_hw

#endif  // SRC_HW_BUS_H_
