// State serialization primitives for machine snapshots (DESIGN.md §13).
//
// StateWriter/StateReader implement the canonical little-endian wire format
// every SaveState/LoadState method in the hardware, runtime and monitor
// layers speaks. The format is position-based (no per-field tags): a
// component's LoadState must read exactly the fields its SaveState wrote, in
// the same order — versioning is handled one level up, by the snapshot
// container (src/snapshot), which tags whole sections by name and stamps the
// file with a format version. Readers bounds-check every access; running off
// the end of a payload is a hard error (OPEC_CHECK), surfaced as a structured
// failure wherever ScopedCheckThrow is active (campaign, fuzz).

#ifndef SRC_HW_STATE_IO_H_
#define SRC_HW_STATE_IO_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/support/check.h"

namespace opec_hw {

// FNV-1a 64-bit, the digest used for snapshot identity (matches the fuzz
// harness's case digests).
inline uint64_t Fnv1a64(const uint8_t* data, size_t n,
                        uint64_t h = 0xCBF29CE484222325ull) {
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ data[i]) * 0x100000001B3ull;
  }
  return h;
}

class StateWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void Bytes(const uint8_t* data, size_t n) { bytes_.insert(bytes_.end(), data, data + n); }
  // Length-prefixed byte string.
  void Blob(const std::vector<uint8_t>& v) {
    U64(v.size());
    Bytes(v.data(), v.size());
  }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  const std::vector<uint8_t>& data() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

class StateReader {
 public:
  StateReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit StateReader(const std::vector<uint8_t>& v) : data_(v.data()), size_(v.size()) {}

  uint8_t U8() {
    Need(1);
    return data_[pos_++];
  }
  bool Bool() { return U8() != 0; }
  uint32_t U32() {
    Need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    Need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  void Bytes(uint8_t* out, size_t n) {
    Need(n);
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }
  std::vector<uint8_t> Blob() {
    uint64_t n = U64();
    Need(n);
    std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }
  std::string Str() {
    uint64_t n = U64();
    Need(n);
    std::string out(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return out;
  }
  // Consume a length-prefixed byte string without copying it out (the
  // warm-start restore path skips memory images it restores from the
  // dirty-page baseline instead). Returns the skipped length.
  uint64_t SkipBlob() {
    uint64_t n = U64();
    Need(n);
    pos_ += n;
    return n;
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  void Need(uint64_t n) const {
    OPEC_CHECK_MSG(n <= size_ - pos_, "snapshot payload truncated or corrupt");
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace opec_hw

#endif  // SRC_HW_STATE_IO_H_
