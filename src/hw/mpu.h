// ARMv7-M Memory Protection Unit model (Section 2.2 of the paper).
//
// Eight regions, each a power-of-two-sized, size-aligned window with access
// permissions per privilege level, an execute-never bit, and eight sub-region
// disable bits. When regions overlap, the highest-numbered region containing
// the address wins; a disabled sub-region falls through to lower-numbered
// regions. With no matching region, privileged access uses the default map
// (PRIVDEFENA) and unprivileged access faults.

#ifndef SRC_HW_MPU_H_
#define SRC_HW_MPU_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/hw/fault.h"

namespace opec_hw {

// Access-permission encodings (subset of the ARM AP field).
enum class AccessPerm : uint8_t {
  kNoAccess,        // AP=000: no access at either level
  kPrivRw,          // AP=001: privileged RW, unprivileged no access
  kPrivRwUnprivRo,  // AP=010
  kFullAccess,      // AP=011: RW at both levels
  kPrivRo,          // AP=101
  kReadOnly,        // AP=110/111: RO at both levels
};

const char* AccessPermName(AccessPerm p);

struct MpuRegionConfig {
  bool enabled = false;
  uint32_t base = 0;
  uint8_t size_log2 = 0;  // region size = 1 << size_log2; minimum 5 (32 bytes)
  uint8_t srd = 0;        // sub-region disable bits (bit i disables sub-region i)
  AccessPerm ap = AccessPerm::kNoAccess;
  bool xn = true;  // execute never

  uint32_t size() const { return size_log2 >= 32 ? 0xFFFFFFFFu : (1u << size_log2); }
  bool Contains(uint32_t addr) const;
  std::string ToString() const;
};

class Mpu {
 public:
  static constexpr int kNumRegions = 8;
  static constexpr int kNumSubRegions = 8;
  static constexpr uint8_t kMinSizeLog2 = 5;  // 32 bytes

  // Validates the ARMv7-M constraints (power-of-two size >= 32 bytes, base
  // aligned to size, sub-regions only for regions >= 256 bytes) and installs
  // the region. Invalid configs are a host programming error (CHECK).
  void ConfigureRegion(int index, const MpuRegionConfig& config);
  void DisableRegion(int index);
  const MpuRegionConfig& region(int index) const;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Returns true when the given access is permitted. Exec permission is
  // checked separately via CheckExec.
  bool CheckAccess(uint32_t addr, uint32_t size, AccessKind kind, bool privileged) const;
  bool CheckExec(uint32_t addr, bool privileged) const;

  // Counts MPU reconfigurations, for the cost model and the benches.
  uint64_t config_writes() const { return config_writes_; }

 private:
  // Decides a single byte address. Returns the deciding region index, or -1
  // for background.
  int DecidingRegion(uint32_t addr) const;
  bool PermAllows(AccessPerm ap, AccessKind kind, bool privileged) const;

  std::array<MpuRegionConfig, kNumRegions> regions_{};
  bool enabled_ = false;
  uint64_t config_writes_ = 0;
};

}  // namespace opec_hw

#endif  // SRC_HW_MPU_H_
