// ARMv7-M Memory Protection Unit model (Section 2.2 of the paper).
//
// Eight regions, each a power-of-two-sized, size-aligned window with access
// permissions per privilege level, an execute-never bit, and eight sub-region
// disable bits. When regions overlap, the highest-numbered region containing
// the address wins; a disabled sub-region falls through to lower-numbered
// regions. With no matching region, privileged access uses the default map
// (PRIVDEFENA) and unprivileged access faults.

#ifndef SRC_HW_MPU_H_
#define SRC_HW_MPU_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/hw/fault.h"
#include "src/hw/state_io.h"

namespace opec_hw {

// Access-permission encodings (subset of the ARM AP field).
enum class AccessPerm : uint8_t {
  kNoAccess,        // AP=000: no access at either level
  kPrivRw,          // AP=001: privileged RW, unprivileged no access
  kPrivRwUnprivRo,  // AP=010
  kFullAccess,      // AP=011: RW at both levels
  kPrivRo,          // AP=101
  kReadOnly,        // AP=110/111: RO at both levels
};

const char* AccessPermName(AccessPerm p);

struct MpuRegionConfig {
  bool enabled = false;
  uint32_t base = 0;
  uint8_t size_log2 = 0;  // region size = 1 << size_log2; minimum 5 (32 bytes)
  uint8_t srd = 0;        // sub-region disable bits (bit i disables sub-region i)
  AccessPerm ap = AccessPerm::kNoAccess;
  bool xn = true;  // execute never

  uint32_t size() const { return size_log2 >= 32 ? 0xFFFFFFFFu : (1u << size_log2); }
  bool Contains(uint32_t addr) const;
  std::string ToString() const;
};

class Mpu {
 public:
  static constexpr int kNumRegions = 8;
  static constexpr int kNumSubRegions = 8;
  static constexpr uint8_t kMinSizeLog2 = 5;  // 32 bytes

  // Validates the ARMv7-M constraints (power-of-two size >= 32 bytes, base
  // aligned to size, sub-regions only for regions >= 256 bytes) and installs
  // the region. Invalid configs are a host programming error (CHECK).
  void ConfigureRegion(int index, const MpuRegionConfig& config);
  void DisableRegion(int index);
  const MpuRegionConfig& region(int index) const;

  // Drops every decision-cache entry. Must be called whenever region state
  // changes by any route other than ConfigureRegion/DisableRegion (which call
  // it themselves) — in particular LoadState: restoring region registers
  // around a live cache would leave stale allow-masks from the pre-restore
  // configuration (see mpu_test.cc, LoadStateInvalidatesDecisionCache).
  void InvalidateCache() { ++generation_; }

  // Monotonic reconfiguration stamp backing the decision cache. External
  // verdict caches (the bytecode tier's per-instruction access caches) key
  // their entries on this: any region change — ConfigureRegion, DisableRegion,
  // LoadState, explicit InvalidateCache — bumps it, so a stale cached verdict
  // can never match.
  uint64_t generation() const { return generation_; }

  // Snapshot support (DESIGN.md §13): enable bit, all eight region registers
  // and the reconfiguration counter. The decision cache is not serialized —
  // it is derived state — and LoadState invalidates it.
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Returns true when the given access is permitted. Exec permission is
  // checked separately via CheckExec. Defined inline below: this sits on the
  // interpreter's per-access path and must fold into the bus fast path.
  bool CheckAccess(uint32_t addr, uint32_t size, AccessKind kind, bool privileged) const;
  bool CheckExec(uint32_t addr, bool privileged) const;

  // Range variant for bulk copies: true iff every byte of [addr, addr+len)
  // is permitted. Exact — MPU decisions are uniform within any 32-byte
  // aligned window (regions are >=32-byte, size-aligned; sub-regions are
  // >=32-byte), so one probe per window equals probing every byte.
  bool CheckRange(uint32_t addr, uint32_t len, AccessKind kind, bool privileged) const;

  // Differential-testing twin of CheckAccess: identical verdict contract, but
  // computed straight from the region walk (ComputeAllowMask) without reading
  // or filling the decision cache. The fuzzer's cache oracle compares the two
  // on every probe.
  bool CheckAccessUncached(uint32_t addr, uint32_t size, AccessKind kind,
                           bool privileged) const;

  // Verdict for a one-byte probe at `addr`, plus the maximal closed interval
  // [*lo, *hi] containing addr over which that verdict cannot change: the
  // interval crosses no region boundary and no sub-region boundary of any
  // enabled region, so every byte in it has the same deciding region and the
  // same allow mask. External verdict caches (the bytecode tier) pair the
  // interval with generation() to skip the region walk for every subsequent
  // access that stays inside it — a streaming copy through a region costs one
  // walk instead of one per 32-byte window. With the MPU disabled the whole
  // address space is one allow interval.
  bool AllowedRange(uint32_t addr, AccessKind kind, bool privileged, uint32_t* lo,
                    uint32_t* hi) const;

  // Counts MPU reconfigurations, for the cost model and the benches.
  uint64_t config_writes() const { return config_writes_; }

  // Lets reconfiguration events carry the modeled cycle stamp; wired up by
  // Machine. Null is fine (events stamp cycle 0).
  void set_cycle_counter(const uint64_t* cycles) { cycles_ = cycles; }

  // Forensics: explains the decision CheckAccess made for this access — the
  // deciding region (including sub-region fall-through) or the background
  // map, and why it allowed or denied. Pure observation; charges nothing and
  // does not touch the decision cache.
  std::string ExplainAccess(uint32_t addr, uint32_t size, AccessKind kind,
                            bool privileged) const;

 private:
  // Decides a single byte address. Returns the deciding region index, or -1
  // for background.
  int DecidingRegion(uint32_t addr) const;
  bool PermAllows(AccessPerm ap, AccessKind kind, bool privileged) const;
  // All six allow bits for the window containing addr, from its deciding
  // region (or the PRIVDEFENA background). Cold path of the decision cache.
  uint8_t ComputeAllowMask(uint32_t addr) const;
  // Cached allow bits for addr's window. The decision is uniform within a
  // 32-byte aligned window (regions and sub-regions are >=32-byte and
  // size-aligned), so a direct-mapped per-window cache returns the exact
  // same bits ComputeAllowMask would. Entries are invalidated wholesale by
  // bumping generation_ on every region reconfiguration.
  uint8_t MaskFor(uint32_t addr) const;
  // Decides one probe address: deciding region (or background) + permission.
  bool ProbeAllows(uint32_t addr, AccessKind kind, bool privileged) const;

  struct DecisionCacheEntry {
    uint32_t window = 0;      // addr & ~31u
    uint64_t generation = 0;  // matches generation_ when valid
    // Bit (kind<<1)|priv for read (kind 0) and write (kind 1); bits 4|priv
    // for execute. Encodes the full probe outcome so the hot path is one
    // lookup and one bit test.
    uint8_t allow_mask = 0;
  };
  static constexpr uint32_t kDecisionCacheSize = 256;  // power of two

  std::array<MpuRegionConfig, kNumRegions> regions_{};
  bool enabled_ = false;
  uint64_t config_writes_ = 0;
  const uint64_t* cycles_ = nullptr;
  // generation_ starts at 1 so zero-initialized cache entries never match.
  uint64_t generation_ = 1;
  mutable std::array<DecisionCacheEntry, kDecisionCacheSize> decision_cache_{};
};

inline uint8_t Mpu::MaskFor(uint32_t addr) const {
  uint32_t window = addr & ~31u;
  DecisionCacheEntry& e = decision_cache_[(addr >> 5) & (kDecisionCacheSize - 1)];
  if (e.generation == generation_ && e.window == window) {
    return e.allow_mask;
  }
  uint8_t mask = ComputeAllowMask(addr);
  e.window = window;
  e.generation = generation_;
  e.allow_mask = mask;
  return mask;
}

inline bool Mpu::PermAllows(AccessPerm ap, AccessKind kind, bool privileged) const {
  switch (ap) {
    case AccessPerm::kNoAccess:
      return false;
    case AccessPerm::kPrivRw:
      return privileged;
    case AccessPerm::kPrivRwUnprivRo:
      return privileged || kind == AccessKind::kRead;
    case AccessPerm::kFullAccess:
      return true;
    case AccessPerm::kPrivRo:
      return privileged && kind == AccessKind::kRead;
    case AccessPerm::kReadOnly:
      return kind == AccessKind::kRead;
  }
  return false;
}

inline bool Mpu::ProbeAllows(uint32_t addr, AccessKind kind, bool privileged) const {
  uint32_t bit = (static_cast<uint32_t>(kind) << 1) | static_cast<uint32_t>(privileged);
  return (MaskFor(addr) >> bit) & 1u;
}

inline bool Mpu::CheckAccess(uint32_t addr, uint32_t size, AccessKind kind,
                             bool privileged) const {
  if (!enabled_) {
    return true;
  }
  // Check the first and last byte of the access (accesses are at most 4 bytes,
  // so these two probes cover every byte's deciding region transition). When
  // both bytes share one 32-byte aligned window the decision is uniform
  // (region and sub-region boundaries are all multiples of 32), so one probe
  // suffices — the common case for the aligned accesses guests make.
  uint32_t last = addr + (size == 0 ? 0 : size - 1);
  if ((addr & ~31u) == (last & ~31u)) {
    return ProbeAllows(addr, kind, privileged);
  }
  return ProbeAllows(addr, kind, privileged) && ProbeAllows(last, kind, privileged);
}

}  // namespace opec_hw

#endif  // SRC_HW_MPU_H_
