// ARMv7-M address-space constants used by the machine model (Figure 2 of the
// paper) and STM32-style peripheral base addresses used by the device models.

#ifndef SRC_HW_ADDRESS_MAP_H_
#define SRC_HW_ADDRESS_MAP_H_

#include <cstdint>

namespace opec_hw {

// --- Architectural regions (ARMv7-M) ---
inline constexpr uint32_t kFlashBase = 0x08000000;
inline constexpr uint32_t kSramBase = 0x20000000;
inline constexpr uint32_t kPeriphBase = 0x40000000;
inline constexpr uint32_t kPeriphEnd = 0x5FFFFFFF;
// Private Peripheral Bus: privileged-only by architecture; unprivileged access
// raises a BusFault (Section 2.1) — the hook OPEC uses to emulate core-
// peripheral loads/stores.
inline constexpr uint32_t kPpbBase = 0xE0000000;
inline constexpr uint32_t kPpbEnd = 0xE00FFFFF;

// --- Core peripherals (on the PPB) ---
inline constexpr uint32_t kDwtBase = 0xE0001000;  // Data Watchpoint and Trace
inline constexpr uint32_t kDwtCtrl = kDwtBase + 0x0;
inline constexpr uint32_t kDwtCyccnt = kDwtBase + 0x4;  // cycle counter
inline constexpr uint32_t kSysTickBase = 0xE000E010;
inline constexpr uint32_t kScbBase = 0xE000ED00;
inline constexpr uint32_t kMpuRegsBase = 0xE000ED90;

// --- STM32-style general peripherals ---
inline constexpr uint32_t kUsart1Base = 0x40011000;
inline constexpr uint32_t kUsart2Base = 0x40004400;
inline constexpr uint32_t kGpioABase = 0x40020000;
inline constexpr uint32_t kGpioDBase = 0x40020C00;
inline constexpr uint32_t kRccBase = 0x40023800;
inline constexpr uint32_t kSdioBase = 0x40012C00;
inline constexpr uint32_t kLcdBase = 0x40016800;
inline constexpr uint32_t kDma2dBase = 0x4002B000;
inline constexpr uint32_t kEthBase = 0x40028000;
inline constexpr uint32_t kDcmiBase = 0x50050000;  // camera interface
inline constexpr uint32_t kUsbOtgBase = 0x50000000;
inline constexpr uint32_t kPeriphBlockSize = 0x400;  // default register-bank size

}  // namespace opec_hw

#endif  // SRC_HW_ADDRESS_MAP_H_
