#include "src/hw/bus.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "src/obs/event.h"
#include "src/support/check.h"
#include "src/support/text.h"

namespace opec_hw {

Bus::Bus(const BoardSpec& board, Mpu* mpu, uint64_t* cycles)
    : board_(board), mpu_(mpu), cycles_(cycles) {
  OPEC_CHECK(mpu != nullptr && cycles != nullptr);
  flash_.resize(board.flash_size, 0xFF);  // erased-flash pattern
  sram_.resize(board.sram_size, 0x00);
  flash_dirty_.resize((board.flash_size + kDirtyPageSize - 1) >> kDirtyPageShift, 0);
  sram_dirty_.resize((board.sram_size + kDirtyPageSize - 1) >> kDirtyPageShift, 0);
}

void Bus::AttachDevice(MmioDevice* device) {
  OPEC_CHECK(device != nullptr);
  for (const DeviceRange& r : device_ranges_) {
    bool overlap = device->base() < r.end && r.base < device->base() + device->size();
    OPEC_CHECK_MSG(!overlap,
                   "device range overlap: " + r.device->name() + " vs " + device->name());
  }
  DeviceRange range{device->base(), device->base() + device->size(), device};
  device_ranges_.insert(
      std::upper_bound(device_ranges_.begin(), device_ranges_.end(), range,
                       [](const DeviceRange& a, const DeviceRange& b) { return a.base < b.base; }),
      range);
  last_device_ = nullptr;  // insertion invalidates pointers into the table
}

Bus::Target Bus::Route(uint32_t addr, MmioDevice** device) const {
  // The fixed windows are mutually disjoint, so check order is free; SRAM
  // first, as data accesses dominate every workload.
  if (addr - kSramBase < board_.sram_size) {
    return Target::kSram;
  }
  if (addr - kFlashBase < board_.flash_size) {
    return Target::kFlash;
  }
  if (addr >= kPpbBase && addr <= kPpbEnd) {
    return Target::kPpb;
  }
  if (last_device_ != nullptr && addr >= last_device_->base && addr < last_device_->end) {
    if (device != nullptr) {
      *device = last_device_->device;
    }
    return Target::kDevice;
  }
  // Binary search over the sorted, non-overlapping intervals: the candidate
  // is the last range whose base is <= addr.
  auto it = std::upper_bound(
      device_ranges_.begin(), device_ranges_.end(), addr,
      [](uint32_t a, const DeviceRange& r) { return a < r.base; });
  if (it != device_ranges_.begin()) {
    --it;
    if (addr < it->end) {
      last_device_ = &*it;
      if (device != nullptr) {
        *device = it->device;
      }
      return Target::kDevice;
    }
  }
  return Target::kUnmapped;
}

AccessResult Bus::PpbRead(uint32_t addr, uint32_t size, bool privileged) {
  if (!privileged) {
    return AccessResult::BusFault();
  }
  (void)size;
  if (addr == kDwtCyccnt) {
    return AccessResult::Ok(static_cast<uint32_t>(*cycles_));
  }
  if (addr == kDwtCtrl) {
    return AccessResult::Ok(1);  // CYCCNTENA reads back as enabled
  }
  if (addr == kSysTickBase + 0x0) {
    return AccessResult::Ok(systick_ctrl_);
  }
  if (addr == kSysTickBase + 0x4) {
    return AccessResult::Ok(systick_load_);
  }
  if (addr == kSysTickBase + 0x8) {
    // Free-running downcounter derived from the cycle counter, rebased to the
    // last SYST_CVR write (any write clears the count; the next cycle
    // reloads from SYST_RVR). SYST_RVR is a 24-bit field architecturally;
    // clamp before the divide so an out-of-range stored value can never make
    // `reload + 1` wrap to zero and divide the host by zero.
    uint32_t reload = systick_load_ & 0x00FFFFFF;
    if (reload == 0) {
      reload = 0x00FFFFFF;
    }
    uint64_t since = *cycles_ - static_cast<uint64_t>(systick_cvr_write_cycle_);
    if (since == 0) {
      return AccessResult::Ok(0);  // just cleared, reload happens next cycle
    }
    return AccessResult::Ok(reload - static_cast<uint32_t>((since - 1) % (reload + 1)));
  }
  if (addr >= kScbBase && addr < kScbBase + 0x90) {
    return AccessResult::Ok(0);
  }
  if (addr >= kMpuRegsBase && addr < kMpuRegsBase + 0x20) {
    return AccessResult::Ok(0);  // MPU state is driven through the Mpu object API
  }
  return AccessResult::Ok(0);  // other PPB space reads as zero
}

AccessResult Bus::PpbWrite(uint32_t addr, uint32_t size, uint32_t value, bool privileged) {
  if (!privileged) {
    return AccessResult::BusFault();
  }
  (void)size;
  if (addr == kSysTickBase + 0x0) {
    systick_ctrl_ = value;
    return AccessResult::Ok();
  }
  if (addr == kSysTickBase + 0x4) {
    systick_load_ = value & 0x00FFFFFF;
    return AccessResult::Ok();
  }
  if (addr == kSysTickBase + 0x8) {
    // SYST_CVR: a write of any value clears the current count to zero and
    // clears CTRL.COUNTFLAG (ARMv7-M B3.3.3). Previously this fell through to
    // "accepted, not decoded", silently dropping the write — guest code that
    // restarted the tick counter kept reading the old phase.
    systick_cvr_write_cycle_ = static_cast<int64_t>(*cycles_);
    systick_ctrl_ &= ~(1u << 16);
    return AccessResult::Ok();
  }
  // DWT control, SCB, MPU alias: accepted, not decoded.
  return AccessResult::Ok();
}

AccessResult Bus::ReadSlow(uint32_t addr, uint32_t size, bool privileged) {
  MmioDevice* device = nullptr;
  Target target = Route(addr, &device);
  if (target == Target::kPpb) {
    // The PPB is not governed by the MPU; it is privileged-only by
    // architecture (Section 2.1).
    return PpbRead(addr, size, privileged);
  }
  if (!mpu_->CheckAccess(addr, size, AccessKind::kRead, privileged)) {
    return AccessResult::MemFault();
  }
  switch (target) {
    case Target::kFlash:
      // A multi-byte access must lie entirely inside the region: an access
      // that starts in flash but runs past flash_size hits unmapped space.
      if (addr - kFlashBase + size > board_.flash_size) {
        return AccessResult::BusFault();
      }
      return AccessResult::Ok(ReadBacking(flash_, addr - kFlashBase, size));
    case Target::kSram:
      if (addr - kSramBase + size > board_.sram_size) {
        return AccessResult::BusFault();
      }
      return AccessResult::Ok(ReadBacking(sram_, addr - kSramBase, size));
    case Target::kDevice: {
      uint32_t value = 0;
      uint64_t extra = 0;
      if (!device->Read(addr - device->base(), &value, &extra)) {
        return AccessResult::BusFault();
      }
      *cycles_ += extra;
      OPEC_OBS_EVENT(opec_obs::EventKind::kMmioAccess, *cycles_,
                     opec_obs::Event::kNoOperation, 0, addr, size, value);
      return AccessResult::Ok(value);
    }
    case Target::kPpb:
    case Target::kUnmapped:
      return AccessResult::BusFault();
  }
  OPEC_UNREACHABLE("bad Target");
}

AccessResult Bus::WriteSlow(uint32_t addr, uint32_t size, uint32_t value, bool privileged) {
  MmioDevice* device = nullptr;
  Target target = Route(addr, &device);
  if (target == Target::kPpb) {
    return PpbWrite(addr, size, value, privileged);
  }
  if (!mpu_->CheckAccess(addr, size, AccessKind::kWrite, privileged)) {
    return AccessResult::MemFault();
  }
  switch (target) {
    case Target::kFlash:
      // Flash is not writable at runtime (DEP: W^X). Surface as a bus fault,
      // like a locked flash controller.
      return AccessResult::BusFault();
    case Target::kSram:
      if (addr - kSramBase + size > board_.sram_size) {
        return AccessResult::BusFault();  // access runs past the end of SRAM
      }
      WriteBacking(sram_, addr - kSramBase, size, value);
      MarkDirty(sram_dirty_, addr - kSramBase, size);
      return AccessResult::Ok();
    case Target::kDevice: {
      uint64_t extra = 0;
      if (!device->Write(addr - device->base(), value, &extra)) {
        return AccessResult::BusFault();
      }
      *cycles_ += extra;
      OPEC_OBS_EVENT(opec_obs::EventKind::kMmioAccess, *cycles_,
                     opec_obs::Event::kNoOperation, 0, addr, size | 0x100u, value);
      return AccessResult::Ok();
    }
    case Target::kPpb:
    case Target::kUnmapped:
      return AccessResult::BusFault();
  }
  OPEC_UNREACHABLE("bad Target");
}

std::string Bus::ExplainFault(uint32_t addr, uint32_t size, AccessKind kind,
                              bool privileged) const {
  const char* kind_name = kind == AccessKind::kWrite ? "write" : "read";
  MmioDevice* device = nullptr;
  Target target = Route(addr, &device);
  switch (target) {
    case Target::kPpb:
      if (!privileged) {
        return opec_support::StrPrintf(
            "unprivileged %s of the Private Peripheral Bus at %s; the PPB is "
            "privileged-only by architecture (the monitor emulates allowlisted core "
            "peripherals only)",
            kind_name, opec_support::HexAddr(addr).c_str());
      }
      return "PPB access rejected";
    case Target::kFlash:
      if (kind == AccessKind::kWrite) {
        return opec_support::StrPrintf(
            "write to flash at %s; flash is locked at runtime (W^X)",
            opec_support::HexAddr(addr).c_str());
      }
      if (addr - kFlashBase + size > board_.flash_size) {
        return opec_support::StrPrintf(
            "%u-byte read at %s runs past the end of flash (flash ends at %s)", size,
            opec_support::HexAddr(addr).c_str(),
            opec_support::HexAddr(kFlashBase + board_.flash_size).c_str());
      }
      return "flash access rejected";
    case Target::kSram:
      if (addr - kSramBase + size > board_.sram_size) {
        return opec_support::StrPrintf(
            "%u-byte %s at %s runs past the end of SRAM (SRAM ends at %s)", size, kind_name,
            opec_support::HexAddr(addr).c_str(),
            opec_support::HexAddr(kSramBase + board_.sram_size).c_str());
      }
      return "SRAM access rejected";
    case Target::kDevice:
      return opec_support::StrPrintf(
          "device '%s' rejected the %s at register offset %s (unimplemented or invalid "
          "register)",
          device->name().c_str(), kind_name,
          opec_support::HexAddr(addr - device->base()).c_str());
    case Target::kUnmapped:
      return opec_support::StrPrintf("no memory or device is mapped at %s",
                                     opec_support::HexAddr(addr).c_str());
  }
  OPEC_UNREACHABLE("bad Target");
}

bool Bus::DebugRead(uint32_t addr, uint32_t size, uint32_t* value) {
  Target target = Route(addr, nullptr);
  if (target == Target::kFlash && addr - kFlashBase + size <= board_.flash_size) {
    *value = ReadBacking(flash_, addr - kFlashBase, size);
    return true;
  }
  if (target == Target::kSram && addr - kSramBase + size <= board_.sram_size) {
    *value = ReadBacking(sram_, addr - kSramBase, size);
    return true;
  }
  return false;
}

bool Bus::DebugWrite(uint32_t addr, uint32_t size, uint32_t value) {
  Target target = Route(addr, nullptr);
  if (target == Target::kFlash && addr - kFlashBase + size <= board_.flash_size) {
    WriteBacking(flash_, addr - kFlashBase, size, value);
    MarkDirty(flash_dirty_, addr - kFlashBase, size);
    return true;
  }
  if (target == Target::kSram && addr - kSramBase + size <= board_.sram_size) {
    WriteBacking(sram_, addr - kSramBase, size, value);
    MarkDirty(sram_dirty_, addr - kSramBase, size);
    return true;
  }
  return false;
}

bool Bus::BulkCopy(uint32_t src, uint32_t dst, uint32_t n, bool privileged) {
  if (n == 0) {
    return true;
  }
  // Source: flash or SRAM; destination: SRAM (flash is not runtime-writable,
  // and device windows have side effects — both fall back to the word path).
  const uint8_t* from = nullptr;
  if (src >= kFlashBase && static_cast<uint64_t>(src) - kFlashBase + n <= board_.flash_size) {
    from = flash_.data() + (src - kFlashBase);
  } else if (src >= kSramBase && static_cast<uint64_t>(src) - kSramBase + n <= board_.sram_size) {
    from = sram_.data() + (src - kSramBase);
  } else {
    return false;
  }
  if (!(dst >= kSramBase && static_cast<uint64_t>(dst) - kSramBase + n <= board_.sram_size)) {
    return false;
  }
  if (!mpu_->CheckRange(src, n, AccessKind::kRead, privileged) ||
      !mpu_->CheckRange(dst, n, AccessKind::kWrite, privileged)) {
    return false;
  }
  std::memmove(sram_.data() + (dst - kSramBase), from, n);
  MarkDirty(sram_dirty_, dst - kSramBase, n);
  return true;
}

bool Bus::WordCopy(uint32_t src, uint32_t dst, uint32_t n, bool privileged) {
  auto move = [&](uint32_t from, uint32_t to, uint32_t size) {
    AccessResult r = Read(from, size, privileged);
    if (!r.ok()) {
      return false;
    }
    return Write(to, size, r.value, privileged).ok();
  };
  // Direction selection, memmove-style: when dst starts inside [src, src+n)
  // a low-to-high walk overwrites source bytes before reading them, so walk
  // high-to-low instead (and vice versa — dst below src is safe forward).
  bool overlap_forward =
      dst > src && static_cast<uint64_t>(dst) < static_cast<uint64_t>(src) + n;
  if (!overlap_forward) {
    uint32_t i = 0;
    for (; i + 4 <= n; i += 4) {
      if (!move(src + i, dst + i, 4)) {
        return false;
      }
    }
    for (; i < n; ++i) {
      if (!move(src + i, dst + i, 1)) {
        return false;
      }
    }
    return true;
  }
  uint32_t i = n;
  for (; i % 4 != 0; --i) {
    if (!move(src + i - 1, dst + i - 1, 1)) {
      return false;
    }
  }
  for (; i >= 4; i -= 4) {
    if (!move(src + i - 4, dst + i - 4, 4)) {
      return false;
    }
  }
  return true;
}

void Bus::SaveState(StateWriter& w) const {
  w.U32(systick_load_);
  w.U32(systick_ctrl_);
  w.U64(static_cast<uint64_t>(systick_cvr_write_cycle_));
  w.Blob(flash_);
  w.Blob(sram_);
  w.U64(device_ranges_.size());
  for (const DeviceRange& r : device_ranges_) {
    w.Str(r.device->name());
    StateWriter dw;
    r.device->SaveState(dw);
    w.Blob(dw.Take());
  }
}

void Bus::LoadState(StateReader& r, bool skip_memory) {
  systick_load_ = r.U32();
  systick_ctrl_ = r.U32();
  systick_cvr_write_cycle_ = static_cast<int64_t>(r.U64());
  if (skip_memory) {
    // The caller restored flash/SRAM through the dirty-page baseline; the
    // blobs still have to be consumed to keep the reader positioned.
    OPEC_CHECK_MSG(r.SkipBlob() == flash_.size(),
                   "snapshot flash size mismatch (wrong board?)");
    OPEC_CHECK_MSG(r.SkipBlob() == sram_.size(),
                   "snapshot SRAM size mismatch (wrong board?)");
  } else {
    std::vector<uint8_t> flash = r.Blob();
    OPEC_CHECK_MSG(flash.size() == flash_.size(), "snapshot flash size mismatch (wrong board?)");
    flash_ = std::move(flash);
    std::vector<uint8_t> sram = r.Blob();
    OPEC_CHECK_MSG(sram.size() == sram_.size(), "snapshot SRAM size mismatch (wrong board?)");
    sram_ = std::move(sram);
    // Memory no longer corresponds to any captured baseline page-for-page.
    std::fill(flash_dirty_.begin(), flash_dirty_.end(), 1);
    std::fill(sram_dirty_.begin(), sram_dirty_.end(), 1);
  }
  uint64_t count = r.U64();
  OPEC_CHECK_MSG(count == device_ranges_.size(),
                 "snapshot device count does not match the attached devices");
  for (DeviceRange& range : device_ranges_) {
    std::string name = r.Str();
    OPEC_CHECK_MSG(name == range.device->name(),
                   "snapshot device order/name mismatch: expected " + range.device->name() +
                       ", found " + name);
    std::vector<uint8_t> payload = r.Blob();
    StateReader dr(payload);
    range.device->LoadState(dr);
    OPEC_CHECK_MSG(dr.AtEnd(), "device '" + name + "' left unread snapshot state");
  }
}

void Bus::CaptureMemoryBaseline() {
  baseline_flash_ = flash_;
  baseline_sram_ = sram_;
  std::fill(flash_dirty_.begin(), flash_dirty_.end(), 0);
  std::fill(sram_dirty_.begin(), sram_dirty_.end(), 0);
}

void Bus::RestoreMemoryBaseline() {
  OPEC_CHECK_MSG(has_memory_baseline(),
                 "RestoreMemoryBaseline without CaptureMemoryBaseline");
  auto restore = [](std::vector<uint8_t>& live, const std::vector<uint8_t>& base,
                    std::vector<uint8_t>& dirty) {
    for (size_t p = 0; p < dirty.size(); ++p) {
      if (dirty[p] == 0) {
        continue;
      }
      size_t off = p << kDirtyPageShift;
      size_t n = std::min<size_t>(kDirtyPageSize, live.size() - off);
      std::memcpy(live.data() + off, base.data() + off, n);
      dirty[p] = 0;
    }
  };
  restore(flash_, baseline_flash_, flash_dirty_);
  restore(sram_, baseline_sram_, sram_dirty_);
}

void Bus::DebugWriteBytes(uint32_t addr, const std::vector<uint8_t>& bytes) {
  for (size_t i = 0; i < bytes.size(); ++i) {
    OPEC_CHECK_MSG(DebugWrite(addr + static_cast<uint32_t>(i), 1, bytes[i]),
                   "DebugWriteBytes outside RAM/flash");
  }
}

std::vector<uint8_t> Bus::DebugReadBytes(uint32_t addr, uint32_t size) {
  std::vector<uint8_t> out(size);
  for (uint32_t i = 0; i < size; ++i) {
    uint32_t v = 0;
    OPEC_CHECK_MSG(DebugRead(addr + i, 1, &v), "DebugReadBytes outside RAM/flash");
    out[i] = static_cast<uint8_t>(v);
  }
  return out;
}

}  // namespace opec_hw
