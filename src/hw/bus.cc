#include "src/hw/bus.h"

#include "src/support/check.h"

namespace opec_hw {

Bus::Bus(const BoardSpec& board, Mpu* mpu, uint64_t* cycles)
    : board_(board), mpu_(mpu), cycles_(cycles) {
  OPEC_CHECK(mpu != nullptr && cycles != nullptr);
  flash_.resize(board.flash_size, 0xFF);  // erased-flash pattern
  sram_.resize(board.sram_size, 0x00);
}

void Bus::AttachDevice(MmioDevice* device) {
  OPEC_CHECK(device != nullptr);
  for (const MmioDevice* d : devices_) {
    bool overlap = device->base() < d->base() + d->size() && d->base() < device->base() + device->size();
    OPEC_CHECK_MSG(!overlap, "device range overlap: " + d->name() + " vs " + device->name());
  }
  devices_.push_back(device);
}

Bus::Target Bus::Route(uint32_t addr, MmioDevice** device) const {
  if (addr >= kPpbBase && addr <= kPpbEnd) {
    return Target::kPpb;
  }
  if (addr >= kFlashBase && addr < kFlashBase + board_.flash_size) {
    return Target::kFlash;
  }
  if (addr >= kSramBase && addr < kSramBase + board_.sram_size) {
    return Target::kSram;
  }
  for (MmioDevice* d : devices_) {
    if (d->Contains(addr)) {
      if (device != nullptr) {
        *device = d;
      }
      return Target::kDevice;
    }
  }
  return Target::kUnmapped;
}

uint32_t Bus::ReadBacking(const std::vector<uint8_t>& mem, uint32_t offset, uint32_t size) const {
  uint32_t v = 0;
  for (uint32_t i = 0; i < size; ++i) {
    v |= static_cast<uint32_t>(mem[offset + i]) << (8 * i);
  }
  return v;
}

void Bus::WriteBacking(std::vector<uint8_t>& mem, uint32_t offset, uint32_t size, uint32_t value) {
  for (uint32_t i = 0; i < size; ++i) {
    mem[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

AccessResult Bus::PpbRead(uint32_t addr, uint32_t size, bool privileged) {
  if (!privileged) {
    return AccessResult::BusFault();
  }
  (void)size;
  if (addr == kDwtCyccnt) {
    return AccessResult::Ok(static_cast<uint32_t>(*cycles_));
  }
  if (addr == kDwtCtrl) {
    return AccessResult::Ok(1);  // CYCCNTENA reads back as enabled
  }
  if (addr == kSysTickBase + 0x0) {
    return AccessResult::Ok(systick_ctrl_);
  }
  if (addr == kSysTickBase + 0x4) {
    return AccessResult::Ok(systick_load_);
  }
  if (addr == kSysTickBase + 0x8) {
    // Free-running downcounter derived from the cycle counter.
    uint32_t reload = systick_load_ == 0 ? 0x00FFFFFF : systick_load_;
    return AccessResult::Ok(reload - static_cast<uint32_t>(*cycles_ % (reload + 1)));
  }
  if (addr >= kScbBase && addr < kScbBase + 0x90) {
    return AccessResult::Ok(0);
  }
  if (addr >= kMpuRegsBase && addr < kMpuRegsBase + 0x20) {
    return AccessResult::Ok(0);  // MPU state is driven through the Mpu object API
  }
  return AccessResult::Ok(0);  // other PPB space reads as zero
}

AccessResult Bus::PpbWrite(uint32_t addr, uint32_t size, uint32_t value, bool privileged) {
  if (!privileged) {
    return AccessResult::BusFault();
  }
  (void)size;
  if (addr == kSysTickBase + 0x0) {
    systick_ctrl_ = value;
    return AccessResult::Ok();
  }
  if (addr == kSysTickBase + 0x4) {
    systick_load_ = value & 0x00FFFFFF;
    return AccessResult::Ok();
  }
  // DWT control, SCB, MPU alias: accepted, not decoded.
  return AccessResult::Ok();
}

AccessResult Bus::Read(uint32_t addr, uint32_t size, bool privileged) {
  MmioDevice* device = nullptr;
  Target target = Route(addr, &device);
  if (target == Target::kPpb) {
    // The PPB is not governed by the MPU; it is privileged-only by
    // architecture (Section 2.1).
    return PpbRead(addr, size, privileged);
  }
  if (!mpu_->CheckAccess(addr, size, AccessKind::kRead, privileged)) {
    return AccessResult::MemFault();
  }
  switch (target) {
    case Target::kFlash:
      return AccessResult::Ok(ReadBacking(flash_, addr - kFlashBase, size));
    case Target::kSram:
      return AccessResult::Ok(ReadBacking(sram_, addr - kSramBase, size));
    case Target::kDevice: {
      uint32_t value = 0;
      uint64_t extra = 0;
      if (!device->Read(addr - device->base(), &value, &extra)) {
        return AccessResult::BusFault();
      }
      *cycles_ += extra;
      return AccessResult::Ok(value);
    }
    case Target::kPpb:
    case Target::kUnmapped:
      return AccessResult::BusFault();
  }
  OPEC_UNREACHABLE("bad Target");
}

AccessResult Bus::Write(uint32_t addr, uint32_t size, uint32_t value, bool privileged) {
  MmioDevice* device = nullptr;
  Target target = Route(addr, &device);
  if (target == Target::kPpb) {
    return PpbWrite(addr, size, value, privileged);
  }
  if (!mpu_->CheckAccess(addr, size, AccessKind::kWrite, privileged)) {
    return AccessResult::MemFault();
  }
  switch (target) {
    case Target::kFlash:
      // Flash is not writable at runtime (DEP: W^X). Surface as a bus fault,
      // like a locked flash controller.
      return AccessResult::BusFault();
    case Target::kSram:
      WriteBacking(sram_, addr - kSramBase, size, value);
      return AccessResult::Ok();
    case Target::kDevice: {
      uint64_t extra = 0;
      if (!device->Write(addr - device->base(), value, &extra)) {
        return AccessResult::BusFault();
      }
      *cycles_ += extra;
      return AccessResult::Ok();
    }
    case Target::kPpb:
    case Target::kUnmapped:
      return AccessResult::BusFault();
  }
  OPEC_UNREACHABLE("bad Target");
}

bool Bus::DebugRead(uint32_t addr, uint32_t size, uint32_t* value) {
  Target target = Route(addr, nullptr);
  if (target == Target::kFlash) {
    *value = ReadBacking(flash_, addr - kFlashBase, size);
    return true;
  }
  if (target == Target::kSram) {
    *value = ReadBacking(sram_, addr - kSramBase, size);
    return true;
  }
  return false;
}

bool Bus::DebugWrite(uint32_t addr, uint32_t size, uint32_t value) {
  Target target = Route(addr, nullptr);
  if (target == Target::kFlash) {
    WriteBacking(flash_, addr - kFlashBase, size, value);
    return true;
  }
  if (target == Target::kSram) {
    WriteBacking(sram_, addr - kSramBase, size, value);
    return true;
  }
  return false;
}

void Bus::DebugWriteBytes(uint32_t addr, const std::vector<uint8_t>& bytes) {
  for (size_t i = 0; i < bytes.size(); ++i) {
    OPEC_CHECK_MSG(DebugWrite(addr + static_cast<uint32_t>(i), 1, bytes[i]),
                   "DebugWriteBytes outside RAM/flash");
  }
}

std::vector<uint8_t> Bus::DebugReadBytes(uint32_t addr, uint32_t size) {
  std::vector<uint8_t> out(size);
  for (uint32_t i = 0; i < size; ++i) {
    uint32_t v = 0;
    OPEC_CHECK_MSG(DebugRead(addr + i, 1, &v), "DebugReadBytes outside RAM/flash");
    out[i] = static_cast<uint8_t>(v);
  }
  return out;
}

}  // namespace opec_hw
