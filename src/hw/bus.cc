#include "src/hw/bus.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "src/obs/event.h"
#include "src/support/check.h"
#include "src/support/text.h"

namespace opec_hw {

Bus::Bus(const BoardSpec& board, Mpu* mpu, uint64_t* cycles)
    : board_(board), mpu_(mpu), cycles_(cycles) {
  OPEC_CHECK(mpu != nullptr && cycles != nullptr);
  flash_.resize(board.flash_size, 0xFF);  // erased-flash pattern
  sram_.resize(board.sram_size, 0x00);
}

void Bus::AttachDevice(MmioDevice* device) {
  OPEC_CHECK(device != nullptr);
  for (const DeviceRange& r : device_ranges_) {
    bool overlap = device->base() < r.end && r.base < device->base() + device->size();
    OPEC_CHECK_MSG(!overlap,
                   "device range overlap: " + r.device->name() + " vs " + device->name());
  }
  DeviceRange range{device->base(), device->base() + device->size(), device};
  device_ranges_.insert(
      std::upper_bound(device_ranges_.begin(), device_ranges_.end(), range,
                       [](const DeviceRange& a, const DeviceRange& b) { return a.base < b.base; }),
      range);
  last_device_ = nullptr;  // insertion invalidates pointers into the table
}

Bus::Target Bus::Route(uint32_t addr, MmioDevice** device) const {
  // The fixed windows are mutually disjoint, so check order is free; SRAM
  // first, as data accesses dominate every workload.
  if (addr - kSramBase < board_.sram_size) {
    return Target::kSram;
  }
  if (addr - kFlashBase < board_.flash_size) {
    return Target::kFlash;
  }
  if (addr >= kPpbBase && addr <= kPpbEnd) {
    return Target::kPpb;
  }
  if (last_device_ != nullptr && addr >= last_device_->base && addr < last_device_->end) {
    if (device != nullptr) {
      *device = last_device_->device;
    }
    return Target::kDevice;
  }
  // Binary search over the sorted, non-overlapping intervals: the candidate
  // is the last range whose base is <= addr.
  auto it = std::upper_bound(
      device_ranges_.begin(), device_ranges_.end(), addr,
      [](uint32_t a, const DeviceRange& r) { return a < r.base; });
  if (it != device_ranges_.begin()) {
    --it;
    if (addr < it->end) {
      last_device_ = &*it;
      if (device != nullptr) {
        *device = it->device;
      }
      return Target::kDevice;
    }
  }
  return Target::kUnmapped;
}

AccessResult Bus::PpbRead(uint32_t addr, uint32_t size, bool privileged) {
  if (!privileged) {
    return AccessResult::BusFault();
  }
  (void)size;
  if (addr == kDwtCyccnt) {
    return AccessResult::Ok(static_cast<uint32_t>(*cycles_));
  }
  if (addr == kDwtCtrl) {
    return AccessResult::Ok(1);  // CYCCNTENA reads back as enabled
  }
  if (addr == kSysTickBase + 0x0) {
    return AccessResult::Ok(systick_ctrl_);
  }
  if (addr == kSysTickBase + 0x4) {
    return AccessResult::Ok(systick_load_);
  }
  if (addr == kSysTickBase + 0x8) {
    // Free-running downcounter derived from the cycle counter. SYST_RVR is a
    // 24-bit field architecturally; clamp before the divide so an
    // out-of-range stored value can never make `reload + 1` wrap to zero and
    // divide the host by zero.
    uint32_t reload = systick_load_ & 0x00FFFFFF;
    if (reload == 0) {
      reload = 0x00FFFFFF;
    }
    return AccessResult::Ok(reload - static_cast<uint32_t>(*cycles_ % (reload + 1)));
  }
  if (addr >= kScbBase && addr < kScbBase + 0x90) {
    return AccessResult::Ok(0);
  }
  if (addr >= kMpuRegsBase && addr < kMpuRegsBase + 0x20) {
    return AccessResult::Ok(0);  // MPU state is driven through the Mpu object API
  }
  return AccessResult::Ok(0);  // other PPB space reads as zero
}

AccessResult Bus::PpbWrite(uint32_t addr, uint32_t size, uint32_t value, bool privileged) {
  if (!privileged) {
    return AccessResult::BusFault();
  }
  (void)size;
  if (addr == kSysTickBase + 0x0) {
    systick_ctrl_ = value;
    return AccessResult::Ok();
  }
  if (addr == kSysTickBase + 0x4) {
    systick_load_ = value & 0x00FFFFFF;
    return AccessResult::Ok();
  }
  // DWT control, SCB, MPU alias: accepted, not decoded.
  return AccessResult::Ok();
}

AccessResult Bus::ReadSlow(uint32_t addr, uint32_t size, bool privileged) {
  MmioDevice* device = nullptr;
  Target target = Route(addr, &device);
  if (target == Target::kPpb) {
    // The PPB is not governed by the MPU; it is privileged-only by
    // architecture (Section 2.1).
    return PpbRead(addr, size, privileged);
  }
  if (!mpu_->CheckAccess(addr, size, AccessKind::kRead, privileged)) {
    return AccessResult::MemFault();
  }
  switch (target) {
    case Target::kFlash:
      // A multi-byte access must lie entirely inside the region: an access
      // that starts in flash but runs past flash_size hits unmapped space.
      if (addr - kFlashBase + size > board_.flash_size) {
        return AccessResult::BusFault();
      }
      return AccessResult::Ok(ReadBacking(flash_, addr - kFlashBase, size));
    case Target::kSram:
      if (addr - kSramBase + size > board_.sram_size) {
        return AccessResult::BusFault();
      }
      return AccessResult::Ok(ReadBacking(sram_, addr - kSramBase, size));
    case Target::kDevice: {
      uint32_t value = 0;
      uint64_t extra = 0;
      if (!device->Read(addr - device->base(), &value, &extra)) {
        return AccessResult::BusFault();
      }
      *cycles_ += extra;
      OPEC_OBS_EVENT(opec_obs::EventKind::kMmioAccess, *cycles_,
                     opec_obs::Event::kNoOperation, 0, addr, size, value);
      return AccessResult::Ok(value);
    }
    case Target::kPpb:
    case Target::kUnmapped:
      return AccessResult::BusFault();
  }
  OPEC_UNREACHABLE("bad Target");
}

AccessResult Bus::WriteSlow(uint32_t addr, uint32_t size, uint32_t value, bool privileged) {
  MmioDevice* device = nullptr;
  Target target = Route(addr, &device);
  if (target == Target::kPpb) {
    return PpbWrite(addr, size, value, privileged);
  }
  if (!mpu_->CheckAccess(addr, size, AccessKind::kWrite, privileged)) {
    return AccessResult::MemFault();
  }
  switch (target) {
    case Target::kFlash:
      // Flash is not writable at runtime (DEP: W^X). Surface as a bus fault,
      // like a locked flash controller.
      return AccessResult::BusFault();
    case Target::kSram:
      if (addr - kSramBase + size > board_.sram_size) {
        return AccessResult::BusFault();  // access runs past the end of SRAM
      }
      WriteBacking(sram_, addr - kSramBase, size, value);
      return AccessResult::Ok();
    case Target::kDevice: {
      uint64_t extra = 0;
      if (!device->Write(addr - device->base(), value, &extra)) {
        return AccessResult::BusFault();
      }
      *cycles_ += extra;
      OPEC_OBS_EVENT(opec_obs::EventKind::kMmioAccess, *cycles_,
                     opec_obs::Event::kNoOperation, 0, addr, size | 0x100u, value);
      return AccessResult::Ok();
    }
    case Target::kPpb:
    case Target::kUnmapped:
      return AccessResult::BusFault();
  }
  OPEC_UNREACHABLE("bad Target");
}

std::string Bus::ExplainFault(uint32_t addr, uint32_t size, AccessKind kind,
                              bool privileged) const {
  const char* kind_name = kind == AccessKind::kWrite ? "write" : "read";
  MmioDevice* device = nullptr;
  Target target = Route(addr, &device);
  switch (target) {
    case Target::kPpb:
      if (!privileged) {
        return opec_support::StrPrintf(
            "unprivileged %s of the Private Peripheral Bus at %s; the PPB is "
            "privileged-only by architecture (the monitor emulates allowlisted core "
            "peripherals only)",
            kind_name, opec_support::HexAddr(addr).c_str());
      }
      return "PPB access rejected";
    case Target::kFlash:
      if (kind == AccessKind::kWrite) {
        return opec_support::StrPrintf(
            "write to flash at %s; flash is locked at runtime (W^X)",
            opec_support::HexAddr(addr).c_str());
      }
      if (addr - kFlashBase + size > board_.flash_size) {
        return opec_support::StrPrintf(
            "%u-byte read at %s runs past the end of flash (flash ends at %s)", size,
            opec_support::HexAddr(addr).c_str(),
            opec_support::HexAddr(kFlashBase + board_.flash_size).c_str());
      }
      return "flash access rejected";
    case Target::kSram:
      if (addr - kSramBase + size > board_.sram_size) {
        return opec_support::StrPrintf(
            "%u-byte %s at %s runs past the end of SRAM (SRAM ends at %s)", size, kind_name,
            opec_support::HexAddr(addr).c_str(),
            opec_support::HexAddr(kSramBase + board_.sram_size).c_str());
      }
      return "SRAM access rejected";
    case Target::kDevice:
      return opec_support::StrPrintf(
          "device '%s' rejected the %s at register offset %s (unimplemented or invalid "
          "register)",
          device->name().c_str(), kind_name,
          opec_support::HexAddr(addr - device->base()).c_str());
    case Target::kUnmapped:
      return opec_support::StrPrintf("no memory or device is mapped at %s",
                                     opec_support::HexAddr(addr).c_str());
  }
  OPEC_UNREACHABLE("bad Target");
}

bool Bus::DebugRead(uint32_t addr, uint32_t size, uint32_t* value) {
  Target target = Route(addr, nullptr);
  if (target == Target::kFlash && addr - kFlashBase + size <= board_.flash_size) {
    *value = ReadBacking(flash_, addr - kFlashBase, size);
    return true;
  }
  if (target == Target::kSram && addr - kSramBase + size <= board_.sram_size) {
    *value = ReadBacking(sram_, addr - kSramBase, size);
    return true;
  }
  return false;
}

bool Bus::DebugWrite(uint32_t addr, uint32_t size, uint32_t value) {
  Target target = Route(addr, nullptr);
  if (target == Target::kFlash && addr - kFlashBase + size <= board_.flash_size) {
    WriteBacking(flash_, addr - kFlashBase, size, value);
    return true;
  }
  if (target == Target::kSram && addr - kSramBase + size <= board_.sram_size) {
    WriteBacking(sram_, addr - kSramBase, size, value);
    return true;
  }
  return false;
}

bool Bus::BulkCopy(uint32_t src, uint32_t dst, uint32_t n, bool privileged) {
  if (n == 0) {
    return true;
  }
  // Source: flash or SRAM; destination: SRAM (flash is not runtime-writable,
  // and device windows have side effects — both fall back to the word path).
  const uint8_t* from = nullptr;
  if (src >= kFlashBase && static_cast<uint64_t>(src) - kFlashBase + n <= board_.flash_size) {
    from = flash_.data() + (src - kFlashBase);
  } else if (src >= kSramBase && static_cast<uint64_t>(src) - kSramBase + n <= board_.sram_size) {
    from = sram_.data() + (src - kSramBase);
  } else {
    return false;
  }
  if (!(dst >= kSramBase && static_cast<uint64_t>(dst) - kSramBase + n <= board_.sram_size)) {
    return false;
  }
  if (!mpu_->CheckRange(src, n, AccessKind::kRead, privileged) ||
      !mpu_->CheckRange(dst, n, AccessKind::kWrite, privileged)) {
    return false;
  }
  std::memmove(sram_.data() + (dst - kSramBase), from, n);
  return true;
}

void Bus::DebugWriteBytes(uint32_t addr, const std::vector<uint8_t>& bytes) {
  for (size_t i = 0; i < bytes.size(); ++i) {
    OPEC_CHECK_MSG(DebugWrite(addr + static_cast<uint32_t>(i), 1, bytes[i]),
                   "DebugWriteBytes outside RAM/flash");
  }
}

std::vector<uint8_t> Bus::DebugReadBytes(uint32_t addr, uint32_t size) {
  std::vector<uint8_t> out(size);
  for (uint32_t i = 0; i < size; ++i) {
    uint32_t v = 0;
    OPEC_CHECK_MSG(DebugRead(addr + i, 1, &v), "DebugReadBytes outside RAM/flash");
    out[i] = static_cast<uint8_t>(v);
  }
  return out;
}

}  // namespace opec_hw
