// Access kinds and fault model shared by the bus, the MPU, and the runtime.

#ifndef SRC_HW_FAULT_H_
#define SRC_HW_FAULT_H_

#include <cstdint>

namespace opec_hw {

enum class AccessKind { kRead, kWrite };

enum class AccessStatus {
  kOk,
  // Memory management fault: the MPU denied the access (Section 2.2). The
  // monitor's MemManage handler may resolve it (MPU-region virtualization for
  // peripherals) and retry.
  kMemFault,
  // Bus fault: unprivileged access to the PPB, or an unmapped address. The
  // monitor's BusFault handler may emulate core-peripheral loads/stores.
  kBusFault,
};

struct AccessResult {
  AccessStatus status = AccessStatus::kOk;
  uint32_t value = 0;  // loaded value on successful reads

  static AccessResult Ok(uint32_t value = 0) { return {AccessStatus::kOk, value}; }
  static AccessResult MemFault() { return {AccessStatus::kMemFault, 0}; }
  static AccessResult BusFault() { return {AccessStatus::kBusFault, 0}; }
  bool ok() const { return status == AccessStatus::kOk; }
};

}  // namespace opec_hw

#endif  // SRC_HW_FAULT_H_
