#include "src/hw/soc.h"

#include "src/hw/address_map.h"
#include "src/support/check.h"

namespace opec_hw {

BoardSpec GetBoardSpec(Board board) {
  switch (board) {
    case Board::kStm32F4Discovery:
      return {board, "STM32F4-Discovery", 1u << 20, 192u << 10};
    case Board::kStm32479iEval:
      return {board, "STM32479I-EVAL", 2u << 20, 288u << 10};
  }
  OPEC_UNREACHABLE("bad Board");
}

void SocDescription::AddPeripheral(PeripheralInfo info) {
  OPEC_CHECK(info.size > 0);
  peripherals_.push_back(std::move(info));
}

const PeripheralInfo* SocDescription::Find(uint32_t addr) const {
  for (const PeripheralInfo& p : peripherals_) {
    if (p.Contains(addr)) {
      return &p;
    }
  }
  return nullptr;
}

const PeripheralInfo* SocDescription::FindByName(const std::string& name) const {
  for (const PeripheralInfo& p : peripherals_) {
    if (p.name == name) {
      return &p;
    }
  }
  return nullptr;
}

SocDescription SocDescription::WithCorePeripherals() {
  SocDescription soc;
  soc.AddPeripheral({"DWT", kDwtBase, 0x1000, /*is_core=*/true});
  soc.AddPeripheral({"SysTick", kSysTickBase, 0x10, /*is_core=*/true});
  soc.AddPeripheral({"SCB", kScbBase, 0x90, /*is_core=*/true});
  soc.AddPeripheral({"MPU", kMpuRegsBase, 0x20, /*is_core=*/true});
  return soc;
}

}  // namespace opec_hw
