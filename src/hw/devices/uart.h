// UART device model (USARTx register bank).
//
// Register map (word offsets):
//   +0x00 SR   — bit0 RXNE (rx data available), bit1 TXE (always set)
//   +0x04 DR   — read pops one rx byte (charges per-byte wire latency);
//                write appends one byte to the tx log
//   +0x08 BRR  — baud-rate register (stored; marks the UART configured)
//   +0x0C CR1  — control (bit0 enable)

#ifndef SRC_HW_DEVICES_UART_H_
#define SRC_HW_DEVICES_UART_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/hw/device.h"

namespace opec_hw {

class Uart : public MmioDevice {
 public:
  // 10 bits per byte at 115200 baud on a 168 MHz core ≈ 14600 cycles/byte.
  static constexpr uint64_t kCyclesPerByte = 14600;

  Uart(std::string name, uint32_t base) : MmioDevice(std::move(name), base, 0x400) {}

  bool Read(uint32_t offset, uint32_t* value, uint64_t* extra_cycles) override;
  bool Write(uint32_t offset, uint32_t value, uint64_t* extra_cycles) override;

  // --- Host/testbench interface ---
  void PushRx(const std::vector<uint8_t>& bytes);
  void PushRxString(const std::string& s);
  const std::vector<uint8_t>& tx_log() const { return tx_log_; }
  std::string TxString() const;
  bool configured() const { return configured_; }
  size_t rx_pending() const { return rx_.size(); }

  void SaveState(StateWriter& w) const override {
    w.Blob(std::vector<uint8_t>(rx_.begin(), rx_.end()));
    w.Blob(tx_log_);
    w.U32(brr_);
    w.U32(cr1_);
    w.Bool(configured_);
  }
  void LoadState(StateReader& r) override {
    std::vector<uint8_t> rx = r.Blob();
    rx_.assign(rx.begin(), rx.end());
    tx_log_ = r.Blob();
    brr_ = r.U32();
    cr1_ = r.U32();
    configured_ = r.Bool();
  }

 private:
  std::deque<uint8_t> rx_;
  std::vector<uint8_t> tx_log_;
  uint32_t brr_ = 0;
  uint32_t cr1_ = 0;
  bool configured_ = false;
};

}  // namespace opec_hw

#endif  // SRC_HW_DEVICES_UART_H_
