#include "src/hw/devices/ethernet.h"

namespace opec_hw {

bool Ethernet::Read(uint32_t offset, uint32_t* value, uint64_t* extra_cycles) {
  switch (offset) {
    case 0x00:
      *value = rx_queue_.empty() ? 0u : 1u;
      return true;
    case 0x04:
      *value = rx_queue_.empty() ? 0u : static_cast<uint32_t>(rx_queue_.front().bytes.size());
      return true;
    case 0x08: {
      uint32_t v = 0;
      if (!rx_queue_.empty()) {
        if (rx_cursor_ == 0) {
          *extra_cycles += rx_queue_.front().gap_cycles;  // the frame "arrived" now
        }
        const std::vector<uint8_t>& frame = rx_queue_.front().bytes;
        uint32_t consumed = 0;
        for (int i = 0; i < 4; ++i) {
          if (rx_cursor_ < frame.size()) {
            v |= static_cast<uint32_t>(frame[rx_cursor_++]) << (8 * i);
            ++consumed;
          }
        }
        // Wire time for the bytes actually present; a tail word with fewer
        // than 4 bytes left used to be over-charged as a full word.
        *extra_cycles += consumed * kCyclesPerByte;
      }
      *value = v;
      return true;
    }
    default:
      return offset == 0x0C || offset == 0x10 || offset == 0x14;
  }
}

bool Ethernet::Write(uint32_t offset, uint32_t value, uint64_t* extra_cycles) {
  switch (offset) {
    case 0x0C:
      if (value > kMaxFrameBytes) {
        return false;  // device fault: guest-controlled length beyond the MTU
      }
      tx_len_ = value;
      tx_cursor_ = 0;
      tx_buffer_.assign(tx_len_, 0);
      return true;
    case 0x10:
      for (int i = 0; i < 4; ++i) {
        if (tx_cursor_ < tx_buffer_.size()) {
          tx_buffer_[tx_cursor_++] = static_cast<uint8_t>(value >> (8 * i));
        }
      }
      *extra_cycles += 4 * kCyclesPerByte;
      return true;
    case 0x14:
      if (value == 1 && !rx_queue_.empty()) {
        rx_queue_.pop_front();
        rx_cursor_ = 0;
      } else if (value == 2) {
        tx_log_.Commit(tx_buffer_);
        tx_buffer_.clear();
        tx_len_ = 0;
        tx_cursor_ = 0;
      }
      return true;
    default:
      return offset == 0x00 || offset == 0x04 || offset == 0x08;
  }
}

void Ethernet::QueueRxFrame(std::vector<uint8_t> frame, uint64_t gap_cycles) {
  rx_queue_.push_back(RxFrame{std::move(frame), gap_cycles});
}

}  // namespace opec_hw
