// Camera interface model (DCMI-style).
//
// Register map:
//   +0x00 CTRL   — write 1: capture the host-provided frame
//   +0x04 STATUS — bit0 frame ready
//   +0x08 DATA   — pops the next word of the captured frame
//   +0x0C LEN    — byte length of the captured frame

#ifndef SRC_HW_DEVICES_CAMERA_H_
#define SRC_HW_DEVICES_CAMERA_H_

#include <cstdint>
#include <vector>

#include "src/hw/device.h"

namespace opec_hw {

class Camera : public MmioDevice {
 public:
  static constexpr uint64_t kCaptureCycles = 500000;  // exposure + sensor readout

  Camera(std::string name, uint32_t base) : MmioDevice(std::move(name), base, 0x400) {}

  bool Read(uint32_t offset, uint32_t* value, uint64_t* extra_cycles) override;
  bool Write(uint32_t offset, uint32_t value, uint64_t* extra_cycles) override;

  // --- Host/testbench interface ---
  void SetFrame(std::vector<uint8_t> frame) { frame_ = std::move(frame); }
  uint32_t captures() const { return captures_; }

  void SaveState(StateWriter& w) const override {
    w.Blob(frame_);
    w.U32(cursor_);
    w.Bool(ready_);
    w.U32(captures_);
  }
  void LoadState(StateReader& r) override {
    frame_ = r.Blob();
    cursor_ = r.U32();
    ready_ = r.Bool();
    captures_ = r.U32();
  }

 private:
  std::vector<uint8_t> frame_;
  uint32_t cursor_ = 0;
  bool ready_ = false;
  uint32_t captures_ = 0;
};

}  // namespace opec_hw

#endif  // SRC_HW_DEVICES_CAMERA_H_
