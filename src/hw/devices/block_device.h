// Sector-addressed storage controller model, used for both the SD card (SDIO)
// and the USB mass-storage disk. Programmed-I/O interface:
//
//   +0x00 CMD    — 1 = read sector ARG into the internal buffer,
//                  2 = commit the internal buffer to sector ARG
//   +0x04 ARG    — sector number
//   +0x08 STATUS — bit0 ready (always, PIO model), bit1 error (bad sector)
//   +0x0C DATA   — sequential word window over the 512-byte sector buffer;
//                  reads pop, writes push; CMD resets the window cursor
//
// A sector transfer charges kSectorCycles once at CMD time, modeling the bus
// transfer the paper's applications spend most of their time waiting on.

#ifndef SRC_HW_DEVICES_BLOCK_DEVICE_H_
#define SRC_HW_DEVICES_BLOCK_DEVICE_H_

#include <cstdint>
#include <vector>

#include "src/hw/device.h"

namespace opec_hw {

class BlockDevice : public MmioDevice {
 public:
  static constexpr uint32_t kSectorSize = 512;
  // ~0.9 ms per 512-byte sector at 168 MHz (≈570 KB/s SD card).
  static constexpr uint64_t kSectorCycles = 150000;

  BlockDevice(std::string name, uint32_t base, uint32_t num_sectors)
      : MmioDevice(std::move(name), base, 0x400),
        storage_(num_sectors * kSectorSize, 0),
        num_sectors_(num_sectors) {}

  bool Read(uint32_t offset, uint32_t* value, uint64_t* extra_cycles) override;
  bool Write(uint32_t offset, uint32_t value, uint64_t* extra_cycles) override;

  // --- Host/testbench interface ---
  void WriteSectorDirect(uint32_t sector, const std::vector<uint8_t>& data);
  std::vector<uint8_t> ReadSectorDirect(uint32_t sector) const;
  uint32_t num_sectors() const { return num_sectors_; }
  uint64_t sectors_read() const { return sectors_read_; }
  uint64_t sectors_written() const { return sectors_written_; }

  void SaveState(StateWriter& w) const override {
    w.Blob(storage_);
    w.U32(num_sectors_);
    w.U32(arg_);
    w.U32(cursor_);
    w.Bool(error_);
    w.Blob(buffer_);
    w.U64(sectors_read_);
    w.U64(sectors_written_);
  }
  void LoadState(StateReader& r) override {
    storage_ = r.Blob();
    num_sectors_ = r.U32();
    arg_ = r.U32();
    cursor_ = r.U32();
    error_ = r.Bool();
    buffer_ = r.Blob();
    sectors_read_ = r.U64();
    sectors_written_ = r.U64();
  }

 private:
  std::vector<uint8_t> storage_;
  uint32_t num_sectors_;
  uint32_t arg_ = 0;
  uint32_t cursor_ = 0;  // byte cursor into buffer_
  bool error_ = false;
  std::vector<uint8_t> buffer_ = std::vector<uint8_t>(kSectorSize, 0);
  uint64_t sectors_read_ = 0;
  uint64_t sectors_written_ = 0;
};

}  // namespace opec_hw

#endif  // SRC_HW_DEVICES_BLOCK_DEVICE_H_
