// GPIO bank model.
//
// Register map:
//   +0x00 MODER — pin mode configuration (stored; marks the bank configured)
//   +0x10 IDR   — input data (host-driven, e.g. a user button)
//   +0x14 ODR   — output data (drives pins; the PinLock lock coil, LEDs)

#ifndef SRC_HW_DEVICES_GPIO_H_
#define SRC_HW_DEVICES_GPIO_H_

#include <cstdint>
#include <vector>

#include "src/hw/device.h"

namespace opec_hw {

class Gpio : public MmioDevice {
 public:
  Gpio(std::string name, uint32_t base) : MmioDevice(std::move(name), base, 0x400) {}

  bool Read(uint32_t offset, uint32_t* value, uint64_t* extra_cycles) override;
  bool Write(uint32_t offset, uint32_t value, uint64_t* extra_cycles) override;

  // --- Host/testbench interface ---
  void SetInput(uint32_t pins) { idr_ = pins; }
  uint32_t output() const { return odr_; }
  bool configured() const { return configured_; }
  // Every ODR write, in order — lets tests assert lock/unlock sequences.
  const std::vector<uint32_t>& odr_history() const { return odr_history_; }

  void SaveState(StateWriter& w) const override {
    w.U32(moder_);
    w.U32(idr_);
    w.U32(odr_);
    w.Bool(configured_);
    w.U64(odr_history_.size());
    for (uint32_t v : odr_history_) {
      w.U32(v);
    }
  }
  void LoadState(StateReader& r) override {
    moder_ = r.U32();
    idr_ = r.U32();
    odr_ = r.U32();
    configured_ = r.Bool();
    odr_history_.resize(r.U64());
    for (uint32_t& v : odr_history_) {
      v = r.U32();
    }
  }

 private:
  uint32_t moder_ = 0;
  uint32_t idr_ = 0;
  uint32_t odr_ = 0;
  bool configured_ = false;
  std::vector<uint32_t> odr_history_;
};

}  // namespace opec_hw

#endif  // SRC_HW_DEVICES_GPIO_H_
