// DMA-capable Ethernet MAC model: descriptor rings in guest SRAM, interrupt
// coalescing, and a load-dependent arrival model. Where the PIO model charges
// a fixed gap per frame, this device keeps an absolute arrival schedule (in
// modeled cycles, accumulated from per-frame gaps at queue time): a poll only
// waits if the head frame has not arrived yet, so wait time shrinks as load
// rises — the device saturates instead of idling.
//
// Register map (all word accesses):
//   +0x00 STATUS    (RO) bit0 rx work pending (frame queued or a filled,
//                        unconsumed descriptor), bit1 ring configured
//   +0x04 RXRING    (W)  descriptor ring base address in guest SRAM
//   +0x08 RXCNT     (W)  descriptor count, 1..kMaxDescriptors (else fault)
//   +0x0C COALESCE  (W)  max frames delivered per rx poll, 1..kMaxDescriptors
//   +0x10 TXADDR    (W)  tx frame address in guest memory
//   +0x14 TXLEN     (W)  tx frame length (≤ kMaxFrameBytes, else fault)
//   +0x18 CMD       (W)  1 = rx poll (wait for + DMA-deliver a batch),
//                        2 = tx (DMA-read TXLEN bytes from TXADDR, commit)
//   +0x1C DELIVERED (RO) total frames DMA'd into descriptors
//   +0x20 TXDONE    (RO) total tx frames committed
//
// A descriptor is two words: word0 = buffer address, word1 = OWN|len. The
// guest hands a descriptor to the device by setting bit31 (OWN) in word1; the
// device fills the buffer over DMA, writes word1 = length (OWN cleared), and
// the guest returns it with word1 = OWN after consuming. DMA moves through
// the bus debug interface: it bypasses the MPU (a bus master, not the core)
// and keeps snapshot dirty-page tracking exact.

#ifndef SRC_HW_DEVICES_ETHERNET_DMA_H_
#define SRC_HW_DEVICES_ETHERNET_DMA_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/hw/devices/ethernet.h"
#include "src/hw/machine.h"

namespace opec_hw {

class EthernetDma : public MmioDevice {
 public:
  static constexpr uint64_t kCyclesPerByte = Ethernet::kCyclesPerByte;  // wire rate
  static constexpr uint64_t kDescriptorCycles = 32;  // per-frame DMA setup
  static constexpr uint32_t kMaxFrameBytes = Ethernet::kMaxFrameBytes;
  static constexpr uint32_t kMaxDescriptors = 16;
  static constexpr uint32_t kBufBytes = 256;  // per-descriptor buffer size

  EthernetDma(std::string name, uint32_t base, Machine* machine)
      : MmioDevice(std::move(name), base, 0x400), machine_(machine) {}

  bool Read(uint32_t offset, uint32_t* value, uint64_t* extra_cycles) override;
  bool Write(uint32_t offset, uint32_t value, uint64_t* extra_cycles) override;

  // --- Host/testbench interface (mirrors Ethernet's) ---
  void QueueRxFrame(std::vector<uint8_t> frame,
                    uint64_t gap_cycles = Ethernet::kInterFrameGapCycles);
  const std::deque<std::vector<uint8_t>>& tx_frames() const { return tx_log_.retained; }
  uint64_t tx_committed() const { return tx_log_.committed; }
  uint64_t tx_digest() const { return tx_log_.digest; }
  void set_tx_retention_cap(uint64_t cap) { tx_log_.retention_cap = cap; }
  std::deque<std::vector<uint8_t>> DrainTxFrames() { return tx_log_.Drain(); }
  size_t rx_pending() const { return rx_queue_.size(); }
  uint64_t delivered() const { return delivered_; }

  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  struct RxFrame {
    std::vector<uint8_t> bytes;
    uint64_t arrival_cycle = 0;  // absolute, in modeled cycles
  };

  bool RingConfigured() const { return ring_base_ != 0 && ring_count_ != 0; }
  bool AnyFilledDescriptor();
  bool RxPoll(uint64_t* extra_cycles);

  Machine* machine_ = nullptr;  // cycle clock + bus for DMA; not serialized

  std::deque<RxFrame> rx_queue_;
  uint64_t last_arrival_ = 0;  // schedule accumulator for queued gaps

  uint32_t ring_base_ = 0;
  uint32_t ring_count_ = 0;
  uint32_t coalesce_ = 4;
  uint32_t fill_cursor_ = 0;  // next descriptor the device tries to fill

  uint32_t tx_addr_ = 0;
  uint32_t tx_len_ = 0;

  uint64_t delivered_ = 0;
  TxLog tx_log_;
};

}  // namespace opec_hw

#endif  // SRC_HW_DEVICES_ETHERNET_DMA_H_
