// LCD controller model (LTDC-style).
//
// Register map:
//   +0x00 CTRL       — bit0 enable (marks configured)
//   +0x04 X          — cursor column
//   +0x08 Y          — cursor row
//   +0x0C GRAM       — pixel write at (X, Y); X auto-increments with wrap
//   +0x10 BRIGHTNESS — backlight level 0..255 (drives the fade effect)

#ifndef SRC_HW_DEVICES_LCD_H_
#define SRC_HW_DEVICES_LCD_H_

#include <cstdint>
#include <vector>

#include "src/hw/device.h"

namespace opec_hw {

class Lcd : public MmioDevice {
 public:
  static constexpr uint32_t kWidth = 240;
  static constexpr uint32_t kHeight = 160;
  static constexpr uint64_t kPixelCycles = 8;

  Lcd(std::string name, uint32_t base)
      : MmioDevice(std::move(name), base, 0x400), framebuffer_(kWidth * kHeight, 0) {}

  bool Read(uint32_t offset, uint32_t* value, uint64_t* extra_cycles) override;
  bool Write(uint32_t offset, uint32_t value, uint64_t* extra_cycles) override;

  // --- Host/testbench interface ---
  uint64_t pixels_written() const { return pixels_written_; }
  uint32_t PixelAt(uint32_t x, uint32_t y) const { return framebuffer_[y * kWidth + x]; }
  // FNV-1a over the framebuffer; lets tests assert the displayed image.
  uint32_t FrameChecksum() const;
  bool configured() const { return configured_; }
  const std::vector<uint8_t>& brightness_history() const { return brightness_history_; }

  void SaveState(StateWriter& w) const override {
    w.U64(framebuffer_.size());
    for (uint32_t px : framebuffer_) {
      w.U32(px);
    }
    w.U32(x_);
    w.U32(y_);
    w.Bool(configured_);
    w.U64(pixels_written_);
    w.Blob(brightness_history_);
  }
  void LoadState(StateReader& r) override {
    framebuffer_.resize(r.U64());
    for (uint32_t& px : framebuffer_) {
      px = r.U32();
    }
    x_ = r.U32();
    y_ = r.U32();
    configured_ = r.Bool();
    pixels_written_ = r.U64();
    brightness_history_ = r.Blob();
  }

 private:
  std::vector<uint32_t> framebuffer_;
  uint32_t x_ = 0;
  uint32_t y_ = 0;
  bool configured_ = false;
  uint64_t pixels_written_ = 0;
  std::vector<uint8_t> brightness_history_;
};

}  // namespace opec_hw

#endif  // SRC_HW_DEVICES_LCD_H_
