// Reset and Clock Control model. System_Init-style code writes clock-enable
// registers here; the model just stores them and reports back, which is
// enough for both the peripheral-dependency analysis and the scenarios.
//
// Register map: 16 generic words (+0x00 .. +0x3C), read/write.

#ifndef SRC_HW_DEVICES_RCC_H_
#define SRC_HW_DEVICES_RCC_H_

#include <array>
#include <cstdint>

#include "src/hw/device.h"

namespace opec_hw {

class Rcc : public MmioDevice {
 public:
  Rcc(std::string name, uint32_t base) : MmioDevice(std::move(name), base, 0x400) {}

  bool Read(uint32_t offset, uint32_t* value, uint64_t* extra_cycles) override {
    (void)extra_cycles;
    if (offset % 4 != 0 || offset / 4 >= regs_.size()) {
      return false;
    }
    // CR (+0x00): report PLL ready (bit25) whenever PLL on (bit24) was set.
    uint32_t v = regs_[offset / 4];
    if (offset == 0 && (v & (1u << 24))) {
      v |= 1u << 25;
    }
    *value = v;
    return true;
  }

  bool Write(uint32_t offset, uint32_t value, uint64_t* extra_cycles) override {
    (void)extra_cycles;
    if (offset % 4 != 0 || offset / 4 >= regs_.size()) {
      return false;
    }
    regs_[offset / 4] = value;
    configured_ = true;
    return true;
  }

  bool configured() const { return configured_; }

  void SaveState(StateWriter& w) const override {
    for (uint32_t v : regs_) {
      w.U32(v);
    }
    w.Bool(configured_);
  }
  void LoadState(StateReader& r) override {
    for (uint32_t& v : regs_) {
      v = r.U32();
    }
    configured_ = r.Bool();
  }

 private:
  std::array<uint32_t, 16> regs_{};
  bool configured_ = false;
};

}  // namespace opec_hw

#endif  // SRC_HW_DEVICES_RCC_H_
