// Ethernet MAC model with a programmed-I/O frame interface.
//
// Register map:
//   +0x00 STATUS — bit0 rx frame available
//   +0x04 RXLEN  — length in bytes of the current rx frame
//   +0x08 RXDATA — pops the next word of the current rx frame
//   +0x0C TXLEN  — write: begins a tx frame of that length
//   +0x10 TXDATA — pushes the next word of the tx frame
//   +0x14 CMD    — 1 = done with current rx frame (advance), 2 = commit tx

#ifndef SRC_HW_DEVICES_ETHERNET_H_
#define SRC_HW_DEVICES_ETHERNET_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/hw/device.h"

namespace opec_hw {

class Ethernet : public MmioDevice {
 public:
  // 100 Mbit/s wire vs 168 MHz core: ~13.4 cycles per byte.
  static constexpr uint64_t kCyclesPerByte = 14;
  // Inter-frame arrival gap: the desktop client sends a packet every few
  // milliseconds, so the device (like the paper's testbed) spends most of its
  // time waiting on I/O. Charged when the first word of a new frame is read.
  static constexpr uint64_t kInterFrameGapCycles = 1'000'000;

  Ethernet(std::string name, uint32_t base) : MmioDevice(std::move(name), base, 0x400) {}

  bool Read(uint32_t offset, uint32_t* value, uint64_t* extra_cycles) override;
  bool Write(uint32_t offset, uint32_t value, uint64_t* extra_cycles) override;

  // --- Host/testbench interface ---
  void QueueRxFrame(std::vector<uint8_t> frame);
  const std::vector<std::vector<uint8_t>>& tx_frames() const { return tx_frames_; }
  size_t rx_pending() const { return rx_queue_.size(); }

  void SaveState(StateWriter& w) const override {
    w.U64(rx_queue_.size());
    for (const std::vector<uint8_t>& f : rx_queue_) {
      w.Blob(f);
    }
    w.U32(rx_cursor_);
    w.Blob(tx_buffer_);
    w.U32(tx_len_);
    w.U32(tx_cursor_);
    w.U64(tx_frames_.size());
    for (const std::vector<uint8_t>& f : tx_frames_) {
      w.Blob(f);
    }
  }
  void LoadState(StateReader& r) override {
    rx_queue_.resize(r.U64());
    for (std::vector<uint8_t>& f : rx_queue_) {
      f = r.Blob();
    }
    rx_cursor_ = r.U32();
    tx_buffer_ = r.Blob();
    tx_len_ = r.U32();
    tx_cursor_ = r.U32();
    tx_frames_.resize(r.U64());
    for (std::vector<uint8_t>& f : tx_frames_) {
      f = r.Blob();
    }
  }

 private:
  std::deque<std::vector<uint8_t>> rx_queue_;
  uint32_t rx_cursor_ = 0;
  std::vector<uint8_t> tx_buffer_;
  uint32_t tx_len_ = 0;
  uint32_t tx_cursor_ = 0;
  std::vector<std::vector<uint8_t>> tx_frames_;
};

}  // namespace opec_hw

#endif  // SRC_HW_DEVICES_ETHERNET_H_
