// Ethernet MAC model with a programmed-I/O frame interface.
//
// Register map:
//   +0x00 STATUS — bit0 rx frame available
//   +0x04 RXLEN  — length in bytes of the current rx frame
//   +0x08 RXDATA — pops the next word of the current rx frame
//   +0x0C TXLEN  — write: begins a tx frame of that length (≤ kMaxFrameBytes,
//                  oversize is a device fault)
//   +0x10 TXDATA — pushes the next word of the tx frame
//   +0x14 CMD    — 1 = done with current rx frame (advance), 2 = commit tx

#ifndef SRC_HW_DEVICES_ETHERNET_H_
#define SRC_HW_DEVICES_ETHERNET_H_

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "src/hw/device.h"
#include "src/hw/state_io.h"

namespace opec_hw {

// 168 MHz Cortex-M4 core clock; converts request rates to arrival gaps.
inline constexpr uint64_t kCoreClockHz = 168'000'000;

// Committed-frame accounting shared by the PIO and DMA ethernet models.
// Long-running traffic scenarios commit thousands of frames per boot, so the
// raw frames are retained only up to `retention_cap` (0 = unlimited; the
// scripted scenarios keep it unlimited and assert on frame contents). The
// running commit count and the chained FNV-1a digest cover *every* committed
// byte, so checks can assert on the full tx history without the host ever
// holding it.
struct TxLog {
  std::deque<std::vector<uint8_t>> retained;
  uint64_t committed = 0;
  uint64_t digest = 0xCBF29CE484222325ull;
  uint64_t retention_cap = 0;  // frames; 0 = keep everything

  void Commit(std::vector<uint8_t> frame) {
    ++committed;
    uint8_t len_le[4];
    for (int i = 0; i < 4; ++i) {
      len_le[i] = static_cast<uint8_t>(frame.size() >> (8 * i));
    }
    digest = Fnv1a64(len_le, 4, digest);
    digest = Fnv1a64(frame.data(), frame.size(), digest);
    retained.push_back(std::move(frame));
    if (retention_cap != 0) {
      while (retained.size() > retention_cap) {
        retained.pop_front();
      }
    }
  }

  // Hands the retained frames to the caller and forgets them; the commit
  // count and digest keep accumulating across drains.
  std::deque<std::vector<uint8_t>> Drain() {
    std::deque<std::vector<uint8_t>> out;
    out.swap(retained);
    return out;
  }

  void SaveState(StateWriter& w) const {
    w.U64(retained.size());
    for (const std::vector<uint8_t>& f : retained) {
      w.Blob(f);
    }
    w.U64(committed);
    w.U64(digest);
    w.U64(retention_cap);
  }
  void LoadState(StateReader& r) {
    retained.resize(r.U64());
    for (std::vector<uint8_t>& f : retained) {
      f = r.Blob();
    }
    committed = r.U64();
    digest = r.U64();
    retention_cap = r.U64();
  }
};

class Ethernet : public MmioDevice {
 public:
  // 100 Mbit/s wire vs 168 MHz core: ~13.4 cycles per byte.
  static constexpr uint64_t kCyclesPerByte = 14;
  // Default inter-frame arrival gap: the desktop client sends a packet every
  // few milliseconds, so the device (like the paper's testbed) spends most of
  // its time waiting on I/O. Charged when the first word of a new frame is
  // read. Traffic scenarios override the gap per frame via QueueRxFrame's
  // second argument.
  static constexpr uint64_t kInterFrameGapCycles = 1'000'000;
  // Largest frame a guest may transmit (standard 1500-byte MTU + ethernet
  // header + FCS). A TXLEN beyond this is a device fault — the guest used to
  // be able to make the host allocate 4 GiB with a single register write.
  static constexpr uint32_t kMaxFrameBytes = 1518;

  Ethernet(std::string name, uint32_t base) : MmioDevice(std::move(name), base, 0x400) {}

  bool Read(uint32_t offset, uint32_t* value, uint64_t* extra_cycles) override;
  bool Write(uint32_t offset, uint32_t value, uint64_t* extra_cycles) override;

  // --- Host/testbench interface ---
  void QueueRxFrame(std::vector<uint8_t> frame, uint64_t gap_cycles = kInterFrameGapCycles);
  const std::deque<std::vector<uint8_t>>& tx_frames() const { return tx_log_.retained; }
  uint64_t tx_committed() const { return tx_log_.committed; }
  uint64_t tx_digest() const { return tx_log_.digest; }
  void set_tx_retention_cap(uint64_t cap) { tx_log_.retention_cap = cap; }
  std::deque<std::vector<uint8_t>> DrainTxFrames() { return tx_log_.Drain(); }
  size_t rx_pending() const { return rx_queue_.size(); }

  void SaveState(StateWriter& w) const override {
    w.U64(rx_queue_.size());
    for (const RxFrame& f : rx_queue_) {
      w.Blob(f.bytes);
      w.U64(f.gap_cycles);
    }
    w.U32(rx_cursor_);
    w.Blob(tx_buffer_);
    w.U32(tx_len_);
    w.U32(tx_cursor_);
    tx_log_.SaveState(w);
  }
  void LoadState(StateReader& r) override {
    rx_queue_.resize(r.U64());
    for (RxFrame& f : rx_queue_) {
      f.bytes = r.Blob();
      f.gap_cycles = r.U64();
    }
    rx_cursor_ = r.U32();
    tx_buffer_ = r.Blob();
    tx_len_ = r.U32();
    tx_cursor_ = r.U32();
    tx_log_.LoadState(r);
  }

 private:
  struct RxFrame {
    std::vector<uint8_t> bytes;
    uint64_t gap_cycles = kInterFrameGapCycles;
  };

  std::deque<RxFrame> rx_queue_;
  uint32_t rx_cursor_ = 0;
  std::vector<uint8_t> tx_buffer_;
  uint32_t tx_len_ = 0;
  uint32_t tx_cursor_ = 0;
  TxLog tx_log_;
};

}  // namespace opec_hw

#endif  // SRC_HW_DEVICES_ETHERNET_H_
