#include "src/hw/devices/gpio.h"

namespace opec_hw {

bool Gpio::Read(uint32_t offset, uint32_t* value, uint64_t* extra_cycles) {
  (void)extra_cycles;
  switch (offset) {
    case 0x00:
      *value = moder_;
      return true;
    case 0x10:
      *value = idr_;
      return true;
    case 0x14:
      *value = odr_;
      return true;
    default:
      return false;
  }
}

bool Gpio::Write(uint32_t offset, uint32_t value, uint64_t* extra_cycles) {
  (void)extra_cycles;
  switch (offset) {
    case 0x00:
      moder_ = value;
      configured_ = true;
      return true;
    case 0x14:
      odr_ = value;
      odr_history_.push_back(value);
      return true;
    default:
      return offset == 0x10;  // IDR writes ignored
  }
}

}  // namespace opec_hw
