#include "src/hw/devices/camera.h"

namespace opec_hw {

bool Camera::Read(uint32_t offset, uint32_t* value, uint64_t* extra_cycles) {
  switch (offset) {
    case 0x04:
      *value = ready_ ? 1u : 0u;
      return true;
    case 0x08: {
      uint32_t v = 0;
      for (int i = 0; i < 4; ++i) {
        if (cursor_ < frame_.size()) {
          v |= static_cast<uint32_t>(frame_[cursor_++]) << (8 * i);
        }
      }
      *extra_cycles += 4;
      *value = v;
      return true;
    }
    case 0x0C:
      *value = static_cast<uint32_t>(frame_.size());
      return true;
    default:
      return offset == 0x00;
  }
}

bool Camera::Write(uint32_t offset, uint32_t value, uint64_t* extra_cycles) {
  if (offset == 0x00 && value == 1) {
    ready_ = !frame_.empty();
    cursor_ = 0;
    ++captures_;
    *extra_cycles += kCaptureCycles;
    return true;
  }
  return offset == 0x00 || offset == 0x04;
}

}  // namespace opec_hw
