#include "src/hw/devices/ethernet_dma.h"

#include <algorithm>

#include "src/hw/bus.h"

namespace opec_hw {

bool EthernetDma::AnyFilledDescriptor() {
  if (!RingConfigured()) {
    return false;
  }
  for (uint32_t i = 0; i < ring_count_; ++i) {
    uint32_t w1 = 0;
    if (!machine_->bus().DebugRead(ring_base_ + i * 8 + 4, 4, &w1)) {
      return false;  // ring points outside RAM; nothing the device can do
    }
    if ((w1 & 0x80000000u) == 0 && (w1 & 0xFFFFu) != 0) {
      return true;  // filled by the device, not yet returned by the guest
    }
  }
  return false;
}

bool EthernetDma::RxPoll(uint64_t* extra_cycles) {
  if (rx_queue_.empty() || !RingConfigured()) {
    return true;
  }
  // The guest polled before the head frame arrived: it blocks (busy-waits on
  // the wire) until arrival. Under saturation arrival_cycle lags the core
  // clock and this wait collapses to zero.
  uint64_t now = machine_->cycles();
  if (rx_queue_.front().arrival_cycle > now) {
    *extra_cycles += rx_queue_.front().arrival_cycle - now;
    now = rx_queue_.front().arrival_cycle;
  }
  // Interrupt coalescing: deliver every frame that has already arrived, up to
  // the coalesce budget and the available device-owned descriptors.
  uint32_t batch = 0;
  while (!rx_queue_.empty() && batch < coalesce_ &&
         rx_queue_.front().arrival_cycle <= now) {
    uint32_t desc = ring_base_ + fill_cursor_ * 8;
    uint32_t w1 = 0;
    if (!machine_->bus().DebugRead(desc + 4, 4, &w1) || (w1 & 0x80000000u) == 0) {
      break;  // no free descriptor at the cursor: guest must consume first
    }
    uint32_t buf_addr = 0;
    if (!machine_->bus().DebugRead(desc, 4, &buf_addr)) {
      break;
    }
    RxFrame frame = std::move(rx_queue_.front());
    rx_queue_.pop_front();
    uint32_t len = static_cast<uint32_t>(
        std::min<size_t>(frame.bytes.size(), std::min(kBufBytes, kMaxFrameBytes)));
    for (uint32_t i = 0; i < len; ++i) {
      if (!machine_->bus().DebugWrite(buf_addr + i, 1, frame.bytes[i])) {
        return false;  // descriptor points outside RAM: device fault
      }
    }
    machine_->bus().DebugWrite(desc + 4, 4, len);  // OWN cleared, length latched
    *extra_cycles += kDescriptorCycles + static_cast<uint64_t>(len) * kCyclesPerByte;
    fill_cursor_ = (fill_cursor_ + 1) % ring_count_;
    ++delivered_;
    ++batch;
  }
  return true;
}

bool EthernetDma::Read(uint32_t offset, uint32_t* value, uint64_t* extra_cycles) {
  (void)extra_cycles;
  switch (offset) {
    case 0x00:
      *value = (rx_queue_.empty() && !AnyFilledDescriptor() ? 0u : 1u) |
               (RingConfigured() ? 2u : 0u);
      return true;
    case 0x1C:
      *value = static_cast<uint32_t>(delivered_);
      return true;
    case 0x20:
      *value = static_cast<uint32_t>(tx_log_.committed);
      return true;
    default:
      // Write-only registers read as zero (matches the PIO model's leniency).
      *value = 0;
      return offset == 0x04 || offset == 0x08 || offset == 0x0C || offset == 0x10 ||
             offset == 0x14 || offset == 0x18;
  }
}

bool EthernetDma::Write(uint32_t offset, uint32_t value, uint64_t* extra_cycles) {
  switch (offset) {
    case 0x04:
      ring_base_ = value;
      fill_cursor_ = 0;
      return true;
    case 0x08:
      if (value == 0 || value > kMaxDescriptors) {
        return false;  // device fault: bogus ring size
      }
      ring_count_ = value;
      fill_cursor_ = 0;
      return true;
    case 0x0C:
      if (value == 0 || value > kMaxDescriptors) {
        return false;
      }
      coalesce_ = value;
      return true;
    case 0x10:
      tx_addr_ = value;
      return true;
    case 0x14:
      if (value > kMaxFrameBytes) {
        return false;  // device fault: guest-controlled length beyond the MTU
      }
      tx_len_ = value;
      return true;
    case 0x18:
      if (value == 1) {
        return RxPoll(extra_cycles);
      }
      if (value == 2) {
        std::vector<uint8_t> frame(tx_len_);
        for (uint32_t i = 0; i < tx_len_; ++i) {
          uint32_t byte = 0;
          if (!machine_->bus().DebugRead(tx_addr_ + i, 1, &byte)) {
            return false;  // TXADDR points outside RAM/flash: device fault
          }
          frame[i] = static_cast<uint8_t>(byte);
        }
        *extra_cycles += kDescriptorCycles + static_cast<uint64_t>(frame.size()) * kCyclesPerByte;
        tx_log_.Commit(std::move(frame));
      }
      return true;
    default:
      return offset == 0x00 || offset == 0x1C || offset == 0x20;
  }
}

void EthernetDma::QueueRxFrame(std::vector<uint8_t> frame, uint64_t gap_cycles) {
  last_arrival_ += gap_cycles;
  rx_queue_.push_back(RxFrame{std::move(frame), last_arrival_});
}

void EthernetDma::SaveState(StateWriter& w) const {
  w.U64(rx_queue_.size());
  for (const RxFrame& f : rx_queue_) {
    w.Blob(f.bytes);
    w.U64(f.arrival_cycle);
  }
  w.U64(last_arrival_);
  w.U32(ring_base_);
  w.U32(ring_count_);
  w.U32(coalesce_);
  w.U32(fill_cursor_);
  w.U32(tx_addr_);
  w.U32(tx_len_);
  w.U64(delivered_);
  tx_log_.SaveState(w);
}

void EthernetDma::LoadState(StateReader& r) {
  rx_queue_.resize(r.U64());
  for (RxFrame& f : rx_queue_) {
    f.bytes = r.Blob();
    f.arrival_cycle = r.U64();
  }
  last_arrival_ = r.U64();
  ring_base_ = r.U32();
  ring_count_ = r.U32();
  coalesce_ = r.U32();
  fill_cursor_ = r.U32();
  tx_addr_ = r.U32();
  tx_len_ = r.U32();
  delivered_ = r.U64();
  tx_log_.LoadState(r);
}

}  // namespace opec_hw
