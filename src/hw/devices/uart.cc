#include "src/hw/devices/uart.h"

namespace opec_hw {

bool Uart::Read(uint32_t offset, uint32_t* value, uint64_t* extra_cycles) {
  switch (offset) {
    case 0x00:  // SR
      *value = (rx_.empty() ? 0u : 1u) | 0x2u;
      return true;
    case 0x04:  // DR
      if (rx_.empty()) {
        *value = 0;
      } else {
        *value = rx_.front();
        rx_.pop_front();
        *extra_cycles += kCyclesPerByte;
      }
      return true;
    case 0x08:
      *value = brr_;
      return true;
    case 0x0C:
      *value = cr1_;
      return true;
    default:
      return false;
  }
}

bool Uart::Write(uint32_t offset, uint32_t value, uint64_t* extra_cycles) {
  switch (offset) {
    case 0x04:  // DR: transmit
      tx_log_.push_back(static_cast<uint8_t>(value));
      *extra_cycles += kCyclesPerByte;
      return true;
    case 0x08:
      brr_ = value;
      configured_ = true;
      return true;
    case 0x0C:
      cr1_ = value;
      return true;
    default:
      return offset == 0x00;  // SR writes ignored
  }
}

void Uart::PushRx(const std::vector<uint8_t>& bytes) {
  rx_.insert(rx_.end(), bytes.begin(), bytes.end());
}

void Uart::PushRxString(const std::string& s) {
  rx_.insert(rx_.end(), s.begin(), s.end());
}

std::string Uart::TxString() const { return std::string(tx_log_.begin(), tx_log_.end()); }

}  // namespace opec_hw
