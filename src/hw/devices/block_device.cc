#include "src/hw/devices/block_device.h"

#include <cstring>

#include "src/support/check.h"

namespace opec_hw {

bool BlockDevice::Read(uint32_t offset, uint32_t* value, uint64_t* extra_cycles) {
  (void)extra_cycles;
  switch (offset) {
    case 0x04:
      *value = arg_;
      return true;
    case 0x08:
      *value = 1u | (error_ ? 2u : 0u);
      return true;
    case 0x0C: {
      uint32_t v = 0;
      for (int i = 0; i < 4; ++i) {
        if (cursor_ < kSectorSize) {
          v |= static_cast<uint32_t>(buffer_[cursor_++]) << (8 * i);
        }
      }
      *value = v;
      return true;
    }
    default:
      return false;
  }
}

bool BlockDevice::Write(uint32_t offset, uint32_t value, uint64_t* extra_cycles) {
  switch (offset) {
    case 0x00:  // CMD
      error_ = arg_ >= num_sectors_;
      cursor_ = 0;
      if (error_) {
        return true;
      }
      if (value == 1) {  // read sector into buffer
        std::memcpy(buffer_.data(), storage_.data() + arg_ * kSectorSize, kSectorSize);
        ++sectors_read_;
        *extra_cycles += kSectorCycles;
      } else if (value == 2) {  // commit buffer to sector
        std::memcpy(storage_.data() + arg_ * kSectorSize, buffer_.data(), kSectorSize);
        ++sectors_written_;
        *extra_cycles += kSectorCycles;
      }
      return true;
    case 0x04:
      arg_ = value;
      return true;
    case 0x0C:
      for (int i = 0; i < 4; ++i) {
        if (cursor_ < kSectorSize) {
          buffer_[cursor_++] = static_cast<uint8_t>(value >> (8 * i));
        }
      }
      return true;
    default:
      return offset == 0x08;
  }
}

void BlockDevice::WriteSectorDirect(uint32_t sector, const std::vector<uint8_t>& data) {
  OPEC_CHECK(sector < num_sectors_);
  OPEC_CHECK(data.size() <= kSectorSize);
  std::memcpy(storage_.data() + sector * kSectorSize, data.data(), data.size());
}

std::vector<uint8_t> BlockDevice::ReadSectorDirect(uint32_t sector) const {
  OPEC_CHECK(sector < num_sectors_);
  return std::vector<uint8_t>(storage_.begin() + sector * kSectorSize,
                              storage_.begin() + (sector + 1) * kSectorSize);
}

}  // namespace opec_hw
