#include "src/hw/devices/lcd.h"

namespace opec_hw {

bool Lcd::Read(uint32_t offset, uint32_t* value, uint64_t* extra_cycles) {
  (void)extra_cycles;
  switch (offset) {
    case 0x00:
      *value = configured_ ? 1u : 0u;
      return true;
    case 0x04:
      *value = x_;
      return true;
    case 0x08:
      *value = y_;
      return true;
    case 0x10:
      *value = brightness_history_.empty() ? 0u : brightness_history_.back();
      return true;
    default:
      return false;
  }
}

bool Lcd::Write(uint32_t offset, uint32_t value, uint64_t* extra_cycles) {
  switch (offset) {
    case 0x00:
      configured_ = (value & 1u) != 0;
      return true;
    case 0x04:
      x_ = value % kWidth;
      return true;
    case 0x08:
      y_ = value % kHeight;
      return true;
    case 0x0C:
      framebuffer_[y_ * kWidth + x_] = value;
      ++pixels_written_;
      *extra_cycles += kPixelCycles;
      x_ = (x_ + 1) % kWidth;
      if (x_ == 0) {
        y_ = (y_ + 1) % kHeight;
      }
      return true;
    case 0x10:
      brightness_history_.push_back(static_cast<uint8_t>(value));
      return true;
    default:
      return false;
  }
}

uint32_t Lcd::FrameChecksum() const {
  uint32_t h = 2166136261u;
  for (uint32_t px : framebuffer_) {
    for (int i = 0; i < 4; ++i) {
      h = (h ^ ((px >> (8 * i)) & 0xFF)) * 16777619u;
    }
  }
  return h;
}

}  // namespace opec_hw
