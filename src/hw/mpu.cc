#include "src/hw/mpu.h"

#include "src/support/check.h"
#include "src/support/text.h"

namespace opec_hw {

const char* AccessPermName(AccessPerm p) {
  switch (p) {
    case AccessPerm::kNoAccess:
      return "NA";
    case AccessPerm::kPrivRw:
      return "priv-RW/unpriv-NA";
    case AccessPerm::kPrivRwUnprivRo:
      return "priv-RW/unpriv-RO";
    case AccessPerm::kFullAccess:
      return "RW";
    case AccessPerm::kPrivRo:
      return "priv-RO/unpriv-NA";
    case AccessPerm::kReadOnly:
      return "RO";
  }
  return "?";
}

bool MpuRegionConfig::Contains(uint32_t addr) const {
  if (size_log2 >= 32) {
    return true;
  }
  return (addr & ~(size() - 1)) == base;
}

std::string MpuRegionConfig::ToString() const {
  if (!enabled) {
    return "(disabled)";
  }
  return opec_support::StrPrintf("base=%s size=2^%u srd=0x%02X ap=%s%s",
                                 opec_support::HexAddr(base).c_str(), size_log2, srd,
                                 AccessPermName(ap), xn ? " XN" : "");
}

void Mpu::ConfigureRegion(int index, const MpuRegionConfig& config) {
  OPEC_CHECK(index >= 0 && index < kNumRegions);
  if (config.enabled) {
    OPEC_CHECK_MSG(config.size_log2 >= kMinSizeLog2, "MPU region smaller than 32 bytes");
    if (config.size_log2 < 32) {
      OPEC_CHECK_MSG((config.base & (config.size() - 1)) == 0,
                     "MPU region base not aligned to its size: " + config.ToString());
    } else {
      OPEC_CHECK_MSG(config.base == 0, "4GB MPU region must be based at 0");
    }
    OPEC_CHECK_MSG(config.srd == 0 || config.size_log2 >= 8,
                   "sub-region disable requires a region of at least 256 bytes");
  }
  regions_[static_cast<size_t>(index)] = config;
  ++config_writes_;
}

void Mpu::DisableRegion(int index) {
  OPEC_CHECK(index >= 0 && index < kNumRegions);
  regions_[static_cast<size_t>(index)].enabled = false;
  ++config_writes_;
}

const MpuRegionConfig& Mpu::region(int index) const {
  OPEC_CHECK(index >= 0 && index < kNumRegions);
  return regions_[static_cast<size_t>(index)];
}

int Mpu::DecidingRegion(uint32_t addr) const {
  for (int i = kNumRegions - 1; i >= 0; --i) {
    const MpuRegionConfig& r = regions_[static_cast<size_t>(i)];
    if (!r.enabled || !r.Contains(addr)) {
      continue;
    }
    if (r.srd != 0 && r.size_log2 >= 8) {
      uint32_t sub_size = r.size() / kNumSubRegions;
      uint32_t sub = (addr - r.base) / sub_size;
      if ((r.srd >> sub) & 1u) {
        continue;  // disabled sub-region: fall through to lower regions
      }
    }
    return i;
  }
  return -1;
}

bool Mpu::PermAllows(AccessPerm ap, AccessKind kind, bool privileged) const {
  switch (ap) {
    case AccessPerm::kNoAccess:
      return false;
    case AccessPerm::kPrivRw:
      return privileged;
    case AccessPerm::kPrivRwUnprivRo:
      return privileged || kind == AccessKind::kRead;
    case AccessPerm::kFullAccess:
      return true;
    case AccessPerm::kPrivRo:
      return privileged && kind == AccessKind::kRead;
    case AccessPerm::kReadOnly:
      return kind == AccessKind::kRead;
  }
  return false;
}

bool Mpu::CheckAccess(uint32_t addr, uint32_t size, AccessKind kind, bool privileged) const {
  if (!enabled_) {
    return true;
  }
  // Check the first and last byte of the access (accesses are at most 4 bytes,
  // so these two probes cover every byte's deciding region transition).
  uint32_t last = addr + (size == 0 ? 0 : size - 1);
  for (uint32_t probe : {addr, last}) {
    int idx = DecidingRegion(probe);
    if (idx < 0) {
      // Background map: privileged-only (PRIVDEFENA).
      if (!privileged) {
        return false;
      }
      continue;
    }
    if (!PermAllows(regions_[static_cast<size_t>(idx)].ap, kind, privileged)) {
      return false;
    }
  }
  return true;
}

bool Mpu::CheckExec(uint32_t addr, bool privileged) const {
  if (!enabled_) {
    return true;
  }
  int idx = DecidingRegion(addr);
  if (idx < 0) {
    return privileged;
  }
  const MpuRegionConfig& r = regions_[static_cast<size_t>(idx)];
  return !r.xn && PermAllows(r.ap, AccessKind::kRead, privileged);
}

}  // namespace opec_hw
