#include "src/hw/mpu.h"

#include <algorithm>

#include "src/obs/event.h"
#include "src/support/check.h"
#include "src/support/text.h"

namespace opec_hw {

const char* AccessPermName(AccessPerm p) {
  switch (p) {
    case AccessPerm::kNoAccess:
      return "NA";
    case AccessPerm::kPrivRw:
      return "priv-RW/unpriv-NA";
    case AccessPerm::kPrivRwUnprivRo:
      return "priv-RW/unpriv-RO";
    case AccessPerm::kFullAccess:
      return "RW";
    case AccessPerm::kPrivRo:
      return "priv-RO/unpriv-NA";
    case AccessPerm::kReadOnly:
      return "RO";
  }
  return "?";
}

bool MpuRegionConfig::Contains(uint32_t addr) const {
  if (size_log2 >= 32) {
    return true;
  }
  return (addr & ~(size() - 1)) == base;
}

std::string MpuRegionConfig::ToString() const {
  if (!enabled) {
    return "(disabled)";
  }
  return opec_support::StrPrintf("base=%s size=2^%u srd=0x%02X ap=%s%s",
                                 opec_support::HexAddr(base).c_str(), size_log2, srd,
                                 AccessPermName(ap), xn ? " XN" : "");
}

void Mpu::ConfigureRegion(int index, const MpuRegionConfig& config) {
  OPEC_CHECK(index >= 0 && index < kNumRegions);
  if (config.enabled) {
    OPEC_CHECK_MSG(config.size_log2 >= kMinSizeLog2, "MPU region smaller than 32 bytes");
    if (config.size_log2 < 32) {
      OPEC_CHECK_MSG((config.base & (config.size() - 1)) == 0,
                     "MPU region base not aligned to its size: " + config.ToString());
    } else {
      OPEC_CHECK_MSG(config.base == 0, "4GB MPU region must be based at 0");
    }
    OPEC_CHECK_MSG(config.srd == 0 || config.size_log2 >= 8,
                   "sub-region disable requires a region of at least 256 bytes");
  }
  regions_[static_cast<size_t>(index)] = config;
  ++config_writes_;
  InvalidateCache();
  OPEC_OBS_EVENT(opec_obs::EventKind::kMpuReconfig, cycles_ != nullptr ? *cycles_ : 0,
                 opec_obs::Event::kNoOperation, 0, static_cast<uint32_t>(index), config.base,
                 opec_obs::PackMpuConfig(config.enabled, config.size_log2, config.srd,
                                         static_cast<uint8_t>(config.ap)));
}

void Mpu::DisableRegion(int index) {
  OPEC_CHECK(index >= 0 && index < kNumRegions);
  MpuRegionConfig& r = regions_[static_cast<size_t>(index)];
  r.enabled = false;
  ++config_writes_;
  InvalidateCache();
  OPEC_OBS_EVENT(opec_obs::EventKind::kMpuReconfig, cycles_ != nullptr ? *cycles_ : 0,
                 opec_obs::Event::kNoOperation, 0, static_cast<uint32_t>(index), r.base,
                 opec_obs::PackMpuConfig(false, r.size_log2, r.srd,
                                         static_cast<uint8_t>(r.ap)));
}

const MpuRegionConfig& Mpu::region(int index) const {
  OPEC_CHECK(index >= 0 && index < kNumRegions);
  return regions_[static_cast<size_t>(index)];
}

int Mpu::DecidingRegion(uint32_t addr) const {
  for (int i = kNumRegions - 1; i >= 0; --i) {
    const MpuRegionConfig& r = regions_[static_cast<size_t>(i)];
    if (!r.enabled || !r.Contains(addr)) {
      continue;
    }
    if (r.srd != 0 && r.size_log2 >= 8) {
      uint32_t sub_size = r.size() / kNumSubRegions;
      uint32_t sub = (addr - r.base) / sub_size;
      if ((r.srd >> sub) & 1u) {
        continue;  // disabled sub-region: fall through to lower regions
      }
    }
    return i;
  }
  return -1;
}

uint8_t Mpu::ComputeAllowMask(uint32_t addr) const {
  int idx = DecidingRegion(addr);
  uint8_t mask = 0;
  for (uint32_t priv = 0; priv < 2; ++priv) {
    bool r, w, x;
    if (idx < 0) {
      // Background map: privileged-only (PRIVDEFENA), executable.
      r = w = x = (priv != 0);
    } else {
      const MpuRegionConfig& reg = regions_[static_cast<size_t>(idx)];
      r = PermAllows(reg.ap, AccessKind::kRead, priv != 0);
      w = PermAllows(reg.ap, AccessKind::kWrite, priv != 0);
      x = !reg.xn && r;
    }
    mask = static_cast<uint8_t>(mask | (r ? 1u << priv : 0u) |
                                (w ? 1u << (2 | priv) : 0u) |
                                (x ? 1u << (4 | priv) : 0u));
  }
  return mask;
}

bool Mpu::CheckRange(uint32_t addr, uint32_t len, AccessKind kind, bool privileged) const {
  if (!enabled_ || len == 0) {
    return true;
  }
  // The window mask must be 64-bit: with the 32-bit ~31u, a range wrapping
  // the top of the address space (addr + len > 2^32) truncated last_window
  // below first_window and the loop never probed at all — the whole wrapped
  // range was silently allowed. Probe addresses themselves wrap to uint32,
  // matching the byte-wise wrap-around semantics of the accesses.
  uint64_t first_window = addr & ~31u;
  uint64_t last_window = (static_cast<uint64_t>(addr) + len - 1) & ~31ull;
  for (uint64_t w = first_window; w <= last_window; w += 32) {
    uint32_t probe = w < addr ? addr : static_cast<uint32_t>(w);
    if (!ProbeAllows(probe, kind, privileged)) {
      return false;
    }
  }
  return true;
}

bool Mpu::AllowedRange(uint32_t addr, AccessKind kind, bool privileged, uint32_t* lo,
                       uint32_t* hi) const {
  if (!enabled_) {
    *lo = 0;
    *hi = 0xFFFFFFFFu;
    return true;
  }
  // Narrow [0, 2^32) against every enabled region: clip to the containing
  // granule (the sub-region when SRD is in play, else the whole region) when
  // the region covers addr, and to the gap up to the region's edge when it
  // does not. The surviving interval crosses no boundary of any region, so
  // the deciding-region walk — and with it the allow mask — is constant over
  // all of it. 64-bit bounds: base + size reaches 2^32 for top-of-map regions.
  uint64_t lo64 = 0;
  uint64_t hi64 = 0xFFFFFFFFull;  // inclusive
  for (const MpuRegionConfig& r : regions_) {
    if (!r.enabled) {
      continue;
    }
    uint64_t start = r.base;
    uint64_t end = r.size_log2 >= 32 ? (1ull << 32) : start + r.size();  // exclusive
    if (addr < start) {
      hi64 = std::min(hi64, start - 1);
      continue;
    }
    if (addr >= end) {
      lo64 = std::max(lo64, end);
      continue;
    }
    uint64_t granule = (r.srd != 0 && r.size_log2 >= 8) ? (end - start) / kNumSubRegions
                                                        : end - start;
    uint64_t g = (addr - start) / granule;
    lo64 = std::max(lo64, start + g * granule);
    hi64 = std::min(hi64, start + (g + 1) * granule - 1);
  }
  *lo = static_cast<uint32_t>(lo64);
  *hi = static_cast<uint32_t>(hi64);
  uint32_t bit = (static_cast<uint32_t>(kind) << 1) | static_cast<uint32_t>(privileged);
  return (ComputeAllowMask(addr) >> bit) & 1u;
}

bool Mpu::CheckAccessUncached(uint32_t addr, uint32_t size, AccessKind kind,
                              bool privileged) const {
  if (!enabled_) {
    return true;
  }
  uint32_t bit = (static_cast<uint32_t>(kind) << 1) | static_cast<uint32_t>(privileged);
  uint32_t last = addr + (size == 0 ? 0 : size - 1);
  if (((ComputeAllowMask(addr) >> bit) & 1u) == 0) {
    return false;
  }
  if ((addr & ~31u) == (last & ~31u)) {
    return true;
  }
  return (ComputeAllowMask(last) >> bit) & 1u;
}

std::string Mpu::ExplainAccess(uint32_t addr, uint32_t size, AccessKind kind,
                               bool privileged) const {
  const char* kind_name = kind == AccessKind::kWrite ? "write" : "read";
  const char* level = privileged ? "privileged" : "unprivileged";
  if (!enabled_) {
    return opec_support::StrPrintf("MPU disabled: %s %s allowed by default", level, kind_name);
  }
  // Probe the same two addresses CheckAccess probes; the first denied probe is
  // the decision the fault reflects.
  uint32_t last = addr + (size == 0 ? 0 : size - 1);
  for (uint32_t probe : {addr, last}) {
    if (ProbeAllows(probe, kind, privileged)) {
      if (probe == last) {
        break;
      }
      continue;
    }
    int idx = DecidingRegion(probe);
    std::string where = probe == addr
                            ? std::string()
                            : " (the access straddles into " + opec_support::HexAddr(probe) + ")";
    // Note any higher-priority region that contains the address but stepped
    // aside through a disabled sub-region — the stack-protection mechanism.
    std::string fall_through;
    for (int i = kNumRegions - 1; i > idx; --i) {
      const MpuRegionConfig& r = regions_[static_cast<size_t>(i)];
      if (!r.enabled || !r.Contains(probe) || r.srd == 0 || r.size_log2 < 8) {
        continue;
      }
      uint32_t sub = (probe - r.base) / (r.size() / kNumSubRegions);
      if ((r.srd >> sub) & 1u) {
        fall_through = opec_support::StrPrintf(
            "; region %d covers the address but its sub-region %u is disabled (srd=0x%02X)", i,
            sub, r.srd);
        break;
      }
    }
    if (idx < 0) {
      return opec_support::StrPrintf(
          "no enabled MPU region maps %s%s; the background map (PRIVDEFENA) permits only "
          "privileged access, so the %s %s was denied%s",
          opec_support::HexAddr(probe).c_str(), where.c_str(), level, kind_name,
          fall_through.c_str());
    }
    const MpuRegionConfig& r = regions_[static_cast<size_t>(idx)];
    return opec_support::StrPrintf(
        "denied by MPU region %d [%s]%s: its access permission (%s) does not allow an %s "
        "%s%s",
        idx, r.ToString().c_str(), where.c_str(), AccessPermName(r.ap), level, kind_name,
        fall_through.c_str());
  }
  return opec_support::StrPrintf("MPU permits this %s %s", level, kind_name);
}

void Mpu::SaveState(StateWriter& w) const {
  w.Bool(enabled_);
  w.U64(config_writes_);
  for (const MpuRegionConfig& r : regions_) {
    w.Bool(r.enabled);
    w.U32(r.base);
    w.U8(r.size_log2);
    w.U8(r.srd);
    w.U8(static_cast<uint8_t>(r.ap));
    w.Bool(r.xn);
  }
}

void Mpu::LoadState(StateReader& r) {
  enabled_ = r.Bool();
  config_writes_ = r.U64();
  for (MpuRegionConfig& reg : regions_) {
    reg.enabled = r.Bool();
    reg.base = r.U32();
    reg.size_log2 = r.U8();
    reg.srd = r.U8();
    reg.ap = static_cast<AccessPerm>(r.U8());
    reg.xn = r.Bool();
  }
  // The restored registers replace whatever configuration the cache was
  // filled under; without this, MaskFor keeps answering for the old regions.
  InvalidateCache();
}

bool Mpu::CheckExec(uint32_t addr, bool privileged) const {
  if (!enabled_) {
    return true;
  }
  return (MaskFor(addr) >> (4u | static_cast<uint32_t>(privileged))) & 1u;
}

}  // namespace opec_hw
