// SoC description: the "datasheet" the OPEC-Compiler consumes to recognize
// peripheral accesses (Section 4.2), plus the board memory sizes.

#ifndef SRC_HW_SOC_H_
#define SRC_HW_SOC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace opec_hw {

// One peripheral register bank from the datasheet.
struct PeripheralInfo {
  std::string name;
  uint32_t base = 0;
  uint32_t size = 0;
  // Core peripherals live on the PPB and require privileged access; the
  // monitor emulates unprivileged loads/stores to them (Section 5.2).
  bool is_core = false;

  bool Contains(uint32_t addr) const { return addr >= base && addr - base < size; }
};

enum class Board {
  kStm32F4Discovery,  // 1 MB Flash, 192 KB SRAM
  kStm32479iEval,     // 2 MB Flash, 288 KB SRAM
};

struct BoardSpec {
  Board board;
  std::string name;
  uint32_t flash_size = 0;
  uint32_t sram_size = 0;
};

BoardSpec GetBoardSpec(Board board);

// The datasheet: a named peripheral address list for the chip, consulted by
// the compiler's constant-address backward slicing.
class SocDescription {
 public:
  void AddPeripheral(PeripheralInfo info);
  const std::vector<PeripheralInfo>& peripherals() const { return peripherals_; }

  // Returns the peripheral containing `addr`, or nullptr.
  const PeripheralInfo* Find(uint32_t addr) const;
  const PeripheralInfo* FindByName(const std::string& name) const;

  // Standard core peripherals (DWT, SysTick, SCB, MPU) present on every
  // ARMv7-M chip.
  static SocDescription WithCorePeripherals();

 private:
  std::vector<PeripheralInfo> peripherals_;
};

}  // namespace opec_hw

#endif  // SRC_HW_SOC_H_
