#include "src/aces/aces.h"

#include <algorithm>

#include "src/compiler/image.h"
#include "src/support/check.h"

namespace opec_aces {

using opec_analysis::CallGraph;
using opec_analysis::FunctionResources;
using opec_hw::SocDescription;
using opec_ir::Function;
using opec_ir::GlobalVariable;
using opec_ir::Module;

const char* StrategyName(AcesStrategy s) {
  switch (s) {
    case AcesStrategy::kFilename:
      return "ACES1";
    case AcesStrategy::kFilenameNoOpt:
      return "ACES2";
    case AcesStrategy::kPeripheral:
      return "ACES3";
  }
  return "?";
}

namespace {

uint32_t NextPow2(uint32_t v) {
  uint32_t p = 32;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

// Groups functions into compartments by a string key.
std::map<std::string, std::vector<const Function*>> GroupBy(
    const Module& module,
    const std::map<const Function*, FunctionResources>& resources, AcesStrategy strategy) {
  std::map<std::string, std::vector<const Function*>> groups;
  for (const auto& fn : module.functions()) {
    std::string key;
    switch (strategy) {
      case AcesStrategy::kFilename:
      case AcesStrategy::kFilenameNoOpt:
        key = fn->source_file().empty() ? "unknown.c" : fn->source_file();
        break;
      case AcesStrategy::kPeripheral: {
        // Peripheral-based grouping: functions touching the same peripheral
        // set share a compartment; peripheral-free code groups by file.
        auto it = resources.find(fn.get());
        if (it != resources.end() && !it->second.peripherals.empty()) {
          for (const std::string& p : it->second.peripherals) {
            key += p + "+";
          }
        } else {
          key = "file:" + (fn->source_file().empty() ? "unknown.c" : fn->source_file());
        }
        break;
      }
    }
    groups[key].push_back(fn.get());
  }
  return groups;
}

}  // namespace

AcesResult PartitionAces(const Module& module, const CallGraph& cg,
                         const std::map<const Function*, FunctionResources>& resources,
                         const SocDescription& soc, AcesStrategy strategy) {
  (void)soc;
  AcesResult result;
  result.strategy = strategy;

  // --- Form compartments ---
  auto groups = GroupBy(module, resources, strategy);
  for (auto& [key, fns] : groups) {
    Compartment c;
    c.id = static_cast<int>(result.compartments.size());
    c.name = key;
    for (const Function* fn : fns) {
      c.functions.insert(fn);
      c.code_bytes += opec_compiler::FunctionCodeBytes(*fn);
      auto it = resources.find(fn);
      if (it == resources.end()) {
        continue;
      }
      for (const GlobalVariable* gv : it->second.AllGlobals()) {
        if (!gv->is_const()) {
          c.needed_globals.insert(gv);
        }
      }
      c.peripherals.insert(it->second.peripherals.begin(), it->second.peripherals.end());
      c.core_peripherals.insert(it->second.core_peripherals.begin(),
                                it->second.core_peripherals.end());
    }
    // ACES lifts compartments that touch core peripherals to the privileged
    // level (Section 6.2, "Privileged Code").
    c.privileged = !c.core_peripherals.empty();
    result.compartments.push_back(std::move(c));
  }

  // ACES1's optimization: merge small compartments into their most-coupled
  // (call-edge) neighbour to reduce switch counts — at the cost of larger
  // compartments (and more privileged code when a merged partner touched core
  // peripherals).
  if (strategy == AcesStrategy::kFilename && result.compartments.size() > 3) {
    size_t target = std::max<size_t>(3, result.compartments.size() / 2);
    while (result.compartments.size() > target) {
      // Find the smallest compartment (by code bytes).
      size_t smallest = 0;
      for (size_t i = 1; i < result.compartments.size(); ++i) {
        if (result.compartments[i].code_bytes < result.compartments[smallest].code_bytes) {
          smallest = i;
        }
      }
      // Find its most-coupled neighbour (most call edges between them).
      int best = -1;
      int best_edges = -1;
      for (size_t j = 0; j < result.compartments.size(); ++j) {
        if (j == smallest) {
          continue;
        }
        int edges = 0;
        for (const Function* fn : result.compartments[smallest].functions) {
          for (const Function* callee : cg.Callees(fn)) {
            if (result.compartments[j].functions.count(callee) > 0) {
              ++edges;
            }
          }
        }
        for (const Function* fn : result.compartments[j].functions) {
          for (const Function* callee : cg.Callees(fn)) {
            if (result.compartments[smallest].functions.count(callee) > 0) {
              ++edges;
            }
          }
        }
        if (edges > best_edges) {
          best_edges = edges;
          best = static_cast<int>(j);
        }
      }
      OPEC_CHECK(best >= 0);
      Compartment& dst = result.compartments[static_cast<size_t>(best)];
      Compartment& src = result.compartments[smallest];
      dst.functions.insert(src.functions.begin(), src.functions.end());
      dst.needed_globals.insert(src.needed_globals.begin(), src.needed_globals.end());
      dst.peripherals.insert(src.peripherals.begin(), src.peripherals.end());
      dst.core_peripherals.insert(src.core_peripherals.begin(), src.core_peripherals.end());
      dst.privileged = dst.privileged || src.privileged;
      dst.code_bytes += src.code_bytes;
      dst.name += "+" + src.name;
      result.compartments.erase(result.compartments.begin() + static_cast<long>(smallest));
    }
    // Re-number.
    for (size_t i = 0; i < result.compartments.size(); ++i) {
      result.compartments[i].id = static_cast<int>(i);
    }
  }

  for (const Compartment& c : result.compartments) {
    for (const Function* fn : c.functions) {
      result.function_compartment[fn] = c.id;
    }
  }

  // --- Data regions ---
  // Optimal start: variables with identical accessor sets share a region
  // (no over-privilege yet).
  std::map<std::set<int>, DataRegion> by_accessors;
  for (const auto& g : module.globals()) {
    if (g->is_const()) {
      continue;
    }
    std::set<int> accessors;
    for (const Compartment& c : result.compartments) {
      if (c.needed_globals.count(g.get()) > 0) {
        accessors.insert(c.id);
      }
    }
    if (accessors.empty()) {
      continue;  // unused variable: lives in an always-inaccessible region
    }
    DataRegion& r = by_accessors[accessors];
    r.vars.insert(g.get());
    r.compartments = accessors;
    r.bytes += g->size();
  }
  for (auto& [key, region] : by_accessors) {
    result.regions.push_back(region);
  }

  // MPU budget: every compartment may use at most kDataRegionBudget regions.
  // While any compartment exceeds the budget, merge the pair of its regions
  // whose union adds the least over-privileged bytes (Section 3.1 / Figure 3a).
  auto regions_of = [&](int cid) {
    std::vector<size_t> out;
    for (size_t i = 0; i < result.regions.size(); ++i) {
      if (result.regions[i].compartments.count(cid) > 0) {
        out.push_back(i);
      }
    }
    return out;
  };
  bool merged = true;
  while (merged) {
    merged = false;
    for (const Compartment& c : result.compartments) {
      std::vector<size_t> rs = regions_of(c.id);
      if (rs.size() <= static_cast<size_t>(kDataRegionBudget)) {
        continue;
      }
      // Merge the two cheapest regions of this compartment. Cost of merging
      // r1,r2: bytes newly exposed to compartments that did not need them.
      uint64_t best_cost = ~0ull;
      size_t b1 = 0;
      size_t b2 = 0;
      for (size_t i = 0; i < rs.size(); ++i) {
        for (size_t j = i + 1; j < rs.size(); ++j) {
          const DataRegion& r1 = result.regions[rs[i]];
          const DataRegion& r2 = result.regions[rs[j]];
          std::set<int> union_comps = r1.compartments;
          union_comps.insert(r2.compartments.begin(), r2.compartments.end());
          uint64_t cost = 0;
          // r1's bytes become visible to compartments only in r2's set & v.v.
          cost += static_cast<uint64_t>(r1.bytes) * (union_comps.size() - r1.compartments.size());
          cost += static_cast<uint64_t>(r2.bytes) * (union_comps.size() - r2.compartments.size());
          if (cost < best_cost) {
            best_cost = cost;
            b1 = rs[i];
            b2 = rs[j];
          }
        }
      }
      DataRegion& keep = result.regions[b1];
      DataRegion& gone = result.regions[b2];
      keep.vars.insert(gone.vars.begin(), gone.vars.end());
      keep.compartments.insert(gone.compartments.begin(), gone.compartments.end());
      keep.bytes += gone.bytes;
      result.regions.erase(result.regions.begin() + static_cast<long>(b2));
      ++result.merge_steps;
      merged = true;
      break;
    }
  }

  // Accessible globals per compartment: everything in its regions.
  for (Compartment& c : result.compartments) {
    c.accessible_globals.clear();
    for (const DataRegion& r : result.regions) {
      if (r.compartments.count(c.id) > 0) {
        c.accessible_globals.insert(r.vars.begin(), r.vars.end());
      }
    }
  }

  // --- Overhead model (Table 2) ---
  // Flash: per-compartment metadata (region table, entry gateways) plus an
  // instrumented stub per cross-compartment call edge.
  uint32_t cross_edges = 0;
  for (const auto& fn : module.functions()) {
    int from = result.CompartmentOf(fn.get());
    for (const Function* callee : cg.Callees(fn.get())) {
      if (result.CompartmentOf(callee) != from) {
        ++cross_edges;
      }
    }
  }
  // ACES links its runtime (SVC dispatcher + micro-emulator, ~8 KB per its
  // paper) plus per-compartment region tables and a gateway stub per
  // cross-compartment call edge.
  result.flash_overhead_bytes = 8192 + static_cast<uint32_t>(result.compartments.size()) * 256 +
                                cross_edges * 24;
  // SRAM: MPU padding of each data region to a power of two (ACES moves
  // variables, it does not duplicate them — smaller SRAM cost than OPEC).
  for (const DataRegion& r : result.regions) {
    result.sram_overhead_bytes += NextPow2(r.bytes) - r.bytes;
  }
  return result;
}

// --- AcesRuntime ---

void AcesRuntime::OnProgramStart(opec_rt::EngineControl* engine) {
  (void)engine;
  compartment_stack_.clear();
  const Function* main_fn = nullptr;
  for (const auto& [fn, cid] : result_.function_compartment) {
    if (fn->name() == "main") {
      main_fn = fn;
      compartment_stack_.push_back(cid);
    }
  }
  if (main_fn == nullptr) {
    compartment_stack_.push_back(-1);
  }
}

bool AcesRuntime::OnOperationEnter(int op_id, std::vector<uint32_t>& args) {
  (void)op_id;
  (void)args;
  return true;  // ACES images have no OPEC SVC instrumentation
}

bool AcesRuntime::OnOperationExit(int op_id) {
  (void)op_id;
  return true;
}

bool AcesRuntime::OnFunctionCall(const Function* callee) {
  int target = result_.CompartmentOf(callee);
  int current = compartment_stack_.empty() ? -1 : compartment_stack_.back();
  if (target != current) {
    ++switches_;
    machine_.AddCycles(kSwitchCycles);
  }
  compartment_stack_.push_back(target);
  return true;
}

bool AcesRuntime::OnFunctionReturn(const Function* callee) {
  (void)callee;
  OPEC_CHECK(!compartment_stack_.empty());
  int leaving = compartment_stack_.back();
  compartment_stack_.pop_back();
  int resumed = compartment_stack_.empty() ? -1 : compartment_stack_.back();
  if (leaving != resumed) {
    ++switches_;
    machine_.AddCycles(kSwitchCycles);
  }
  return true;
}

}  // namespace opec_aces
