// ACES baseline (Clements et al., USENIX Security '18), re-implemented to the
// published behaviour needed for the paper's comparison (Section 6.4):
//
//   * Three partition strategies: filename with compartment-merging
//     optimization (ACES1), filename without optimization (ACES2), and
//     peripheral-based grouping (ACES3).
//   * Global variables are grouped into MPU data regions. A compartment may
//     use at most kDataRegionBudget regions; when a compartment needs more,
//     regions are merged — the *partition-time over-privilege* of Section
//     3.1: every compartment allowed on a merged region can access all of its
//     variables, needed or not.
//   * Compartments containing core-peripheral accesses are lifted to the
//     privileged level (the PAC column of Table 2).
//   * A runtime model (AcesRuntime) counts and charges compartment switches
//     at cross-compartment call edges for the RO comparison.

#ifndef SRC_ACES_ACES_H_
#define SRC_ACES_ACES_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/call_graph.h"
#include "src/analysis/resource_analysis.h"
#include "src/hw/machine.h"
#include "src/hw/soc.h"
#include "src/ir/module.h"
#include "src/rt/supervisor.h"

namespace opec_aces {

enum class AcesStrategy {
  kFilename,       // ACES1: filename + merge optimization
  kFilenameNoOpt,  // ACES2: one compartment per source file
  kPeripheral,     // ACES3: group by accessed peripheral
};

const char* StrategyName(AcesStrategy s);

struct Compartment {
  int id = -1;
  std::string name;
  std::set<const opec_ir::Function*> functions;
  // Globals the compartment's code actually needs (writable only).
  std::set<const opec_ir::GlobalVariable*> needed_globals;
  // Globals reachable through its assigned data regions (>= needed: the
  // partition-time over-privilege).
  std::set<const opec_ir::GlobalVariable*> accessible_globals;
  std::set<std::string> peripherals;
  std::set<std::string> core_peripherals;
  bool privileged = false;  // lifted because of core-peripheral access
  uint32_t code_bytes = 0;
};

struct DataRegion {
  std::set<const opec_ir::GlobalVariable*> vars;
  std::set<int> compartments;  // compartments allowed to access the region
  uint32_t bytes = 0;
};

struct AcesResult {
  AcesStrategy strategy = AcesStrategy::kFilename;
  std::vector<Compartment> compartments;
  std::map<const opec_ir::Function*, int> function_compartment;
  std::vector<DataRegion> regions;
  int merge_steps = 0;  // how many region merges the MPU budget forced

  // Overhead model (Table 2 FO/SO columns).
  uint32_t flash_overhead_bytes = 0;
  uint32_t sram_overhead_bytes = 0;

  int CompartmentOf(const opec_ir::Function* fn) const {
    auto it = function_compartment.find(fn);
    return it == function_compartment.end() ? -1 : it->second;
  }
};

// MPU regions ACES can spend on data. Of the 8 regions, ACES uses the
// default/background map, the compartment code region, common code, the stack
// window and at least one peripheral region — leaving about two regions for
// global-variable data, which is what forces the region merging of Figure 3.
inline constexpr int kDataRegionBudget = 2;

AcesResult PartitionAces(
    const opec_ir::Module& module, const opec_analysis::CallGraph& cg,
    const std::map<const opec_ir::Function*, opec_analysis::FunctionResources>& resources,
    const opec_hw::SocDescription& soc, AcesStrategy strategy);

// Runtime model: counts cross-compartment call edges and charges the ACES
// compartment-switch cost (SVC entry, region reconfiguration, stack-window
// micro-emulation). Install as the engine's supervisor on a vanilla image.
class AcesRuntime : public opec_rt::Supervisor {
 public:
  // Derived from the ACES paper's reported switch costs on Cortex-M4.
  static constexpr uint64_t kSwitchCycles = 400;

  AcesRuntime(opec_hw::Machine& machine, const AcesResult& result)
      : machine_(machine), result_(result) {}

  void OnProgramStart(opec_rt::EngineControl* engine) override;
  bool OnOperationEnter(int op_id, std::vector<uint32_t>& args) override;
  bool OnOperationExit(int op_id) override;
  bool OnFunctionCall(const opec_ir::Function* callee) override;
  bool OnFunctionReturn(const opec_ir::Function* callee) override;

  uint64_t compartment_switches() const { return switches_; }

 private:
  opec_hw::Machine& machine_;
  const AcesResult& result_;
  std::vector<int> compartment_stack_;
  uint64_t switches_ = 0;
};

}  // namespace opec_aces

#endif  // SRC_ACES_ACES_H_
