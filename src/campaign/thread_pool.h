// Work-stealing thread pool for campaign execution (DESIGN.md Section 11).
//
// Each worker owns a deque: it pops work from the front of its own queue and,
// when empty, steals from the back of a sibling's queue. Submission is bounded
// — Submit() blocks while `queue_capacity` jobs are already waiting — so a
// campaign enqueuing tens of thousands of jobs holds at most a window of them
// (plus their captured state) in memory at once.
//
// The pool schedules; it is deliberately ignorant of job semantics. Result
// placement, exception capture and deterministic ordering are the Executor's
// job (see campaign.h): a scheduled job is a plain std::function<void()>.

#ifndef SRC_CAMPAIGN_THREAD_POOL_H_
#define SRC_CAMPAIGN_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace opec_campaign {

class ThreadPool {
 public:
  static constexpr size_t kDefaultQueueCapacity = 256;

  // `threads` is clamped to [1, hardware_concurrency * 4].
  explicit ThreadPool(int threads, size_t queue_capacity = kDefaultQueueCapacity);
  ~ThreadPool();  // waits for every submitted job to finish

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a job; blocks while the pool already holds `queue_capacity`
  // not-yet-started jobs. Jobs must not throw (wrap and capture upstream).
  void Submit(std::function<void()> job);

  // Blocks until every job submitted so far has completed.
  void Wait();

  int threads() const { return static_cast<int>(workers_.size()); }
  // Jobs a worker executed out of a sibling's queue (scheduling telemetry).
  uint64_t steals() const;

 private:
  struct Worker {
    std::deque<std::function<void()>> queue;  // guarded by ThreadPool::mutex_
    std::thread thread;
  };

  void WorkerLoop(size_t self);
  // Pops the next job for worker `self`: front of its own queue, else steals
  // from the back of the most-loaded sibling. Caller holds mutex_.
  bool PopOrSteal(size_t self, std::function<void()>* job);

  // One mutex for all queues: campaign jobs are milliseconds-plus of work, so
  // scheduling is far off the critical path and a single lock keeps the
  // bounded-submit / wait / steal accounting trivially coherent.
  mutable std::mutex mutex_;
  std::condition_variable work_available_;   // workers sleep here
  std::condition_variable queue_has_space_;  // Submit blocks here
  std::condition_variable all_idle_;         // Wait blocks here

  std::vector<Worker> workers_;
  size_t queue_capacity_;
  size_t next_worker_ = 0;   // round-robin submission cursor
  size_t queued_ = 0;        // jobs waiting in some queue
  size_t running_ = 0;       // jobs currently executing
  uint64_t steals_ = 0;
  bool shutdown_ = false;
};

}  // namespace opec_campaign

#endif  // SRC_CAMPAIGN_THREAD_POOL_H_
