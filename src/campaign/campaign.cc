#include "src/campaign/campaign.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "src/apps/all_apps.h"
#include "src/obs/export.h"
#include "src/snapshot/snapshot.h"
#include "src/support/check.h"
#include "src/support/fs.h"
#include "src/support/table.h"
#include "src/support/text.h"

namespace opec_campaign {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t NsSince(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
}

// Canonical app key: lower-case, '-' folded to '_' (matches the runner CLI
// and host_speed metric keys).
std::string AppKey(const std::string& name) {
  std::string key;
  for (char c : name) {
    key += c == '-' ? '_' : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return key;
}

const opec_apps::AppFactory* FindApp(const std::string& name) {
  // One stable registry per process; covers AllApps() ∪ TrafficApps() so
  // campaign jobs can target the load-mode app variants.
  static const std::vector<opec_apps::AppFactory>* kApps = [] {
    auto* apps = new std::vector<opec_apps::AppFactory>(opec_apps::AllApps());
    for (opec_apps::AppFactory& factory : opec_apps::TrafficApps()) {
      apps->push_back(std::move(factory));
    }
    return apps;
  }();
  for (const opec_apps::AppFactory& factory : *kApps) {
    if (factory.name == name || AppKey(factory.name) == AppKey(name)) {
      return &factory;
    }
  }
  return nullptr;
}

const char* ModeName(opec_apps::BuildMode mode) {
  return mode == opec_apps::BuildMode::kOpec ? "opec" : "vanilla";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += opec_support::StrPrintf("\\u%04x", static_cast<unsigned char>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Clean-run baselines for fault-outcome classification. Values are modeled
// outputs — deterministic per (app, mode) — so which thread populates the
// cache first cannot affect any result.

struct Baseline {
  bool valid = false;
  std::string error;
  uint64_t cycles = 0;
  uint64_t statements = 0;
  uint32_t return_value = 0;
};

Baseline ComputeBaseline(const opec_apps::AppFactory& factory, opec_apps::BuildMode mode,
                         opec_apps::EngineKind engine) {
  Baseline b;
  std::unique_ptr<opec_apps::Application> app = factory.make();
  opec_apps::AppRun run(*app, mode, engine);
  opec_rt::RunResult r = run.Execute();
  if (!r.ok) {
    b.error = "clean baseline run failed: " + r.violation;
    return b;
  }
  std::string check = run.Check();
  if (!check.empty()) {
    b.error = "clean baseline scenario check failed: " + check;
    return b;
  }
  b.valid = true;
  b.cycles = r.cycles;
  b.statements = r.statements;
  b.return_value = r.return_value;
  return b;
}

const Baseline& CleanBaseline(const opec_apps::AppFactory& factory,
                              opec_apps::BuildMode mode, opec_apps::EngineKind engine) {
  static std::mutex mutex;
  static std::map<std::tuple<std::string, int, int>, Baseline> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto key = std::make_tuple(factory.name, static_cast<int>(mode), static_cast<int>(engine));
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, ComputeBaseline(factory, mode, engine)).first;
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Fault planning: derive the injected mutation from the per-job PRNG and the
// built image's policy/layout. Everything here is a pure function of
// (app, mode, seed), which is what makes fault campaigns replayable.

struct FaultPlan {
  FaultClass cls = FaultClass::kStackBitFlip;
  std::string note;
  bool use_attack = false;
  opec_rt::AttackSpec attack;
  bool use_arg_attack = false;
  opec_rt::ArgAttackSpec arg_attack;
};

// Picks the guest function whose entry triggers the injected write: an
// operation entry in OPEC mode (the compromised-operation threat model), any
// function in vanilla mode.
std::string PickAttackerFunction(opec_apps::AppRun& run, SplitMix64& rng) {
  if (run.compile() != nullptr) {
    const opec_compiler::Policy& policy = run.compile()->policy;
    std::vector<const opec_compiler::OperationPolicy*> candidates;
    for (const opec_compiler::OperationPolicy& op : policy.operations) {
      if (op.id != policy.default_op_id && !op.entry.empty()) {
        candidates.push_back(&op);
      }
    }
    if (!candidates.empty()) {
      return candidates[rng.Below(candidates.size())]->entry;
    }
  }
  const auto& fns = run.module().functions();
  return fns.empty() ? "main" : fns[rng.Below(fns.size())]->name();
}

// The operation(s) the attacker function belongs to, for cross-compartment
// victim selection. Empty in vanilla mode.
std::vector<int> AttackerOps(opec_apps::AppRun& run, const std::string& fn_name) {
  std::vector<int> ops;
  if (run.compile() == nullptr) {
    return ops;
  }
  const opec_compiler::Policy& policy = run.compile()->policy;
  const opec_ir::Function* fn = run.module().FindFunction(fn_name);
  auto it = fn == nullptr ? policy.function_ops.end() : policy.function_ops.find(fn);
  return it == policy.function_ops.end() ? ops : it->second;
}

FaultPlan PlanStackBitFlip(opec_apps::AppRun& run, SplitMix64& rng) {
  FaultPlan plan;
  plan.cls = FaultClass::kStackBitFlip;
  const opec_rt::AddressAssignment& layout = run.engine().layout();
  uint32_t words = (layout.stack_top - layout.stack_base) / 4;
  plan.use_attack = true;
  plan.attack.function = PickAttackerFunction(run, rng);
  plan.attack.addr = layout.stack_base + 4 * static_cast<uint32_t>(rng.Below(words));
  plan.attack.size = 4;
  plan.attack.value = 1u << rng.Below(32);  // the flipped bit
  plan.attack.xor_with_old = true;
  plan.note = opec_support::StrPrintf("flip bit in stack word %s from %s",
                                      opec_support::HexAddr(plan.attack.addr).c_str(),
                                      plan.attack.function.c_str());
  return plan;
}

FaultPlan PlanShadowBitFlip(opec_apps::AppRun& run, SplitMix64& rng) {
  if (run.compile() == nullptr) {
    return PlanStackBitFlip(run, rng);  // vanilla: no operation sections
  }
  const opec_compiler::Policy& policy = run.compile()->policy;
  FaultPlan plan;
  plan.cls = FaultClass::kShadowBitFlip;
  plan.use_attack = true;
  plan.attack.function = PickAttackerFunction(run, rng);
  std::vector<int> attacker_ops = AttackerOps(run, plan.attack.function);
  // Prefer a victim section owned by an operation the attacker is not in —
  // the cross-compartment write the MPU must deny.
  std::vector<const opec_compiler::OperationPolicy*> victims;
  std::vector<const opec_compiler::OperationPolicy*> any_section;
  for (const opec_compiler::OperationPolicy& op : policy.operations) {
    if (!op.has_section || op.section_payload == 0) {
      continue;
    }
    any_section.push_back(&op);
    bool shared = false;
    for (int a : attacker_ops) {
      shared = shared || a == op.id;
    }
    if (!shared) {
      victims.push_back(&op);
    }
  }
  if (any_section.empty()) {
    return PlanStackBitFlip(run, rng);
  }
  const auto& pool = victims.empty() ? any_section : victims;
  const opec_compiler::OperationPolicy* victim = pool[rng.Below(pool.size())];
  plan.attack.addr = victim->section_base + static_cast<uint32_t>(rng.Below(victim->section_payload));
  plan.attack.size = 1;
  plan.attack.value = 1u << rng.Below(8);
  plan.attack.xor_with_old = true;
  plan.note = opec_support::StrPrintf(
      "flip bit in %s's data section at %s from %s", victim->name.c_str(),
      opec_support::HexAddr(plan.attack.addr).c_str(), plan.attack.function.c_str());
  return plan;
}

FaultPlan PlanSvcArgCorrupt(opec_apps::AppRun& run, SplitMix64& rng) {
  if (run.compile() == nullptr) {
    return PlanStackBitFlip(run, rng);  // vanilla: no operation SVCs
  }
  const opec_compiler::Policy& policy = run.compile()->policy;
  std::vector<const opec_compiler::OperationPolicy*> candidates;
  for (const opec_compiler::OperationPolicy& op : policy.operations) {
    if (op.id == policy.default_op_id || op.entry.empty()) {
      continue;
    }
    const opec_ir::Function* fn = run.module().FindFunction(op.entry);
    if (fn != nullptr && !fn->type()->params().empty()) {
      candidates.push_back(&op);
    }
  }
  if (candidates.empty()) {
    return PlanShadowBitFlip(run, rng);
  }
  const opec_compiler::OperationPolicy* target = candidates[rng.Below(candidates.size())];
  const opec_ir::Function* fn = run.module().FindFunction(target->entry);
  FaultPlan plan;
  plan.cls = FaultClass::kSvcArgCorrupt;
  plan.use_arg_attack = true;
  plan.arg_attack.op_id = target->id;
  plan.arg_attack.occurrence = 1;
  plan.arg_attack.arg_index = rng.Below(fn->type()->params().size());
  // Half the time forge a pointer into another operation's data section (the
  // confused-deputy shape the monitor's relocation/sanitization must catch);
  // otherwise random garbage.
  const opec_compiler::OperationPolicy* victim = nullptr;
  for (const opec_compiler::OperationPolicy& op : policy.operations) {
    if (op.has_section && op.id != target->id) {
      victim = &op;
      break;
    }
  }
  if (victim != nullptr && rng.Below(2) == 0) {
    plan.arg_attack.value = victim->section_base + static_cast<uint32_t>(
                                                       rng.Below(victim->section_payload + 1));
    plan.note = opec_support::StrPrintf(
        "corrupt SVC arg %zu of %s to point into %s's section (%s)",
        plan.arg_attack.arg_index, target->entry.c_str(), victim->name.c_str(),
        opec_support::HexAddr(plan.arg_attack.value).c_str());
  } else {
    plan.arg_attack.value = rng.Next32();
    plan.note = opec_support::StrPrintf("corrupt SVC arg %zu of %s to %s",
                                        plan.arg_attack.arg_index, target->entry.c_str(),
                                        opec_support::HexAddr(plan.arg_attack.value).c_str());
  }
  return plan;
}

FaultPlan PlanIcallForge(opec_apps::AppRun& run, SplitMix64& rng) {
  // A writable function-pointer global is the forgeable icall target slot.
  std::vector<const opec_ir::GlobalVariable*> slots;
  for (const auto& gv : run.module().globals()) {
    if (!gv->is_const() && gv->type()->IsPointer() && gv->type()->pointee() != nullptr &&
        gv->type()->pointee()->IsFunction()) {
      slots.push_back(gv.get());
    }
  }
  if (slots.empty()) {
    return PlanShadowBitFlip(run, rng);
  }
  const opec_ir::GlobalVariable* slot = slots[rng.Below(slots.size())];
  const auto& fns = run.module().functions();
  FaultPlan plan;
  plan.cls = FaultClass::kIcallForge;
  plan.use_attack = true;
  plan.attack.function = PickAttackerFunction(run, rng);
  plan.attack.addr = run.engine().layout().AddrOf(slot);
  plan.attack.size = 4;
  if (rng.Below(2) == 0 && !fns.empty()) {
    // Forge a *valid* function address the slot was never meant to hold.
    plan.attack.value = run.engine().FuncAddr(fns[rng.Below(fns.size())].get());
    plan.note = opec_support::StrPrintf("forge icall slot %s -> %s from %s",
                                        slot->name().c_str(),
                                        run.engine().FuncAt(plan.attack.value)->name().c_str(),
                                        plan.attack.function.c_str());
  } else {
    plan.attack.value = rng.Next32() | 1u;  // garbage (thumb-bit-looking)
    plan.note = opec_support::StrPrintf("forge icall slot %s -> garbage %s from %s",
                                        slot->name().c_str(),
                                        opec_support::HexAddr(plan.attack.value).c_str(),
                                        plan.attack.function.c_str());
  }
  if (plan.attack.addr == 0) {
    return PlanShadowBitFlip(run, rng);
  }
  return plan;
}

FaultPlan PlanFault(opec_apps::AppRun& run, SplitMix64& rng, FaultClass requested) {
  FaultClass cls = requested;
  if (cls == FaultClass::kAny) {
    constexpr FaultClass kClasses[] = {FaultClass::kStackBitFlip, FaultClass::kShadowBitFlip,
                                       FaultClass::kSvcArgCorrupt, FaultClass::kIcallForge};
    cls = kClasses[rng.Below(4)];
  }
  switch (cls) {
    case FaultClass::kStackBitFlip:
      return PlanStackBitFlip(run, rng);
    case FaultClass::kShadowBitFlip:
      return PlanShadowBitFlip(run, rng);
    case FaultClass::kSvcArgCorrupt:
      return PlanSvcArgCorrupt(run, rng);
    case FaultClass::kIcallForge:
      return PlanIcallForge(run, rng);
    case FaultClass::kAny:
      break;
  }
  OPEC_UNREACHABLE("bad FaultClass");
}

// A sink that only counts; used for the obs-invariance jobs.
class CountingSink : public opec_obs::Sink {
 public:
  void OnEvent(const opec_obs::Event&) override { ++count_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

// Warm-start cache: one booted AppRun per (app, mode) per worker thread.
// Thread-local on purpose — no cross-thread sharing, so jobs stay isolated
// (TSan-clean) and results stay placement-deterministic. The first use on a
// thread pays the full cold build and captures the post-boot snapshot; every
// later job on that thread rewinds to it with RestoreBoot(), skipping
// BuildModule + CompileOpec + LoadGlobals.
opec_apps::AppRun* WarmRun(const opec_apps::AppFactory& factory,
                           opec_apps::BuildMode mode, opec_apps::EngineKind engine) {
  struct Entry {
    std::unique_ptr<opec_apps::Application> app;
    std::unique_ptr<opec_apps::AppRun> run;
  };
  thread_local std::map<std::tuple<std::string, int, int>, Entry> cache;
  auto key = std::make_tuple(factory.name, static_cast<int>(mode), static_cast<int>(engine));
  auto it = cache.find(key);
  if (it == cache.end()) {
    Entry e;
    e.app = factory.make();
    e.run = std::make_unique<opec_apps::AppRun>(*e.app, mode, engine);
    e.run->CaptureBoot();
    it = cache.emplace(key, std::move(e)).first;
  } else {
    it->second.run->RestoreBoot();
  }
  return it->second.run.get();
}

void WriteBinaryFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  OPEC_CHECK_MSG(out.good(), "cannot write state dump: " + path);
}

JobResult RunJobImpl(const JobSpec& spec, size_t index, const std::atomic<bool>* cancel,
                     const JobEnv& env) {
  JobResult out;
  out.index = index;
  out.spec = spec;
  const opec_apps::AppFactory* factory = FindApp(spec.app);
  if (factory == nullptr) {
    throw std::runtime_error("unknown app '" + spec.app + "' (see opec_apps::AllApps)");
  }

  std::unique_ptr<opec_apps::Application> app;
  std::unique_ptr<opec_apps::AppRun> cold_run;
  opec_apps::AppRun* run_ptr;
  if (env.cold_boot) {
    app = factory->make();
    cold_run = std::make_unique<opec_apps::AppRun>(*app, spec.mode, spec.engine);
    run_ptr = cold_run.get();
  } else if (env.warm_provider) {
    run_ptr = env.warm_provider(*factory, spec.mode, spec.engine);
  } else {
    run_ptr = WarmRun(*factory, spec.mode, spec.engine);
  }
  opec_apps::AppRun& run = *run_ptr;
  if (cancel != nullptr) {
    run.engine().set_cancel_flag(cancel);
  }
  if (!env.snapshot_dir.empty()) {
    run.engine().set_fault_state_capture(true);
  }

  SplitMix64 rng(spec.seed);
  FaultPlan plan;
  if (spec.kind == JobKind::kFault) {
    plan = PlanFault(run, rng, spec.fault);
    out.spec.fault = plan.cls;  // echo the resolved class
    out.detail = plan.note;
    if (plan.use_attack) {
      run.AddAttack(plan.attack);
    }
    if (plan.use_arg_attack) {
      run.engine().AddArgAttack(plan.arg_attack);
    }
  }

  CountingSink counting;
  if (spec.attach_counting_sink) {
    run.AttachSink(&counting);
  }
  if (!spec.trace_path.empty()) {
    run.EnableEventRecording();
  }
  if (spec.rv) {
    run.EnableRv();
  }

  opec_rt::RunResult r = run.Execute();
  out.cycles = r.cycles;
  out.statements = r.statements;
  out.return_value = r.return_value;
  out.events = counting.count();
  std::string check = r.ok ? run.Check() : std::string();

  // Crash-state forensics: diverging jobs dump their final snapshot plus the
  // per-denied-access machine states the engine captured (see
  // Executor::Options::snapshot_dir). Runs on every classified exit below.
  auto finish = [&]() -> JobResult {
    // Runtime-verification verdict (DESIGN.md §15): a clean-looking run that
    // tripped a safety automaton is reclassified kRvViolation; runs that were
    // already detected/denied/crashed keep their outcome and just carry the
    // violation counts.
    if (spec.rv && run.rv() != nullptr) {
      out.rv_states = run.rv()->states_visited();
      out.rv_violations = run.rv()->total_violations();
      out.rv_by_automaton = run.rv()->ViolationsByMonitor();
      if (out.rv_violations != 0 &&
          (out.outcome == Outcome::kOk || out.outcome == Outcome::kBenign)) {
        out.outcome = Outcome::kRvViolation;
        out.ok = false;
        const std::vector<opec_rv::RvViolation>& details = run.rv()->details();
        out.detail +=
            opec_support::StrPrintf("%s%llu rv violation(s)", out.detail.empty() ? "" : " | ",
                                    static_cast<unsigned long long>(out.rv_violations));
        if (!details.empty()) {
          out.detail += opec_support::StrPrintf(": [%s] %s", details[0].automaton.c_str(),
                                                details[0].message.c_str());
        }
      }
    }
    bool diverging = out.outcome != Outcome::kOk && out.outcome != Outcome::kNotFired &&
                     out.outcome != Outcome::kBenign;
    if (!env.snapshot_dir.empty() && diverging) {
      opec_snapshot::Snapshot snap = run.CaptureState();
      out.snapshot_digest = snap.Digest();
      std::string stem = opec_support::StrPrintf("%s/job%04zu_%s_%s",
                                                 env.snapshot_dir.c_str(), index,
                                                 AppKey(spec.app).c_str(), ModeName(spec.mode));
      snap.WriteFile(stem + ".snap");
      size_t k = 0;
      for (const opec_obs::FaultReport& fr : run.engine().fault_reports()) {
        if (fr.machine_state != nullptr) {
          WriteBinaryFile(opec_support::StrPrintf("%s.fault%zu.state", stem.c_str(), k),
                          *fr.machine_state);
        }
        ++k;
      }
    }
    return out;
  };

  if (!spec.trace_path.empty() && run.recorder() != nullptr) {
    opec_obs::WriteFile(spec.trace_path,
                        opec_obs::ChromeTraceJson(run.recorder()->Snapshot(),
                                                  run.EventNaming(), factory->name,
                                                  run.recorder()->dropped()));
  }

  if (cancel != nullptr && !r.ok && cancel->load(std::memory_order_relaxed)) {
    out.outcome = Outcome::kTimeout;
    out.ok = false;
    out.detail = r.violation;
    return finish();
  }

  if (spec.kind == JobKind::kScenario) {
    if (!r.ok) {
      out.outcome = Outcome::kViolation;
      out.detail = r.violation;
    } else if (!check.empty()) {
      out.outcome = Outcome::kCheckFailed;
      out.detail = check;
    } else {
      out.outcome = Outcome::kOk;
      out.ok = true;
    }
    return finish();
  }

  // Fault job: classify the outcome against the clean baseline.
  for (const opec_rt::AttackSpec& a : run.engine().attacks()) {
    out.attack_fired = out.attack_fired || a.fired;
    out.attack_blocked = out.attack_blocked || (a.fired && a.blocked);
  }
  for (const opec_rt::ArgAttackSpec& a : run.engine().arg_attacks()) {
    out.attack_fired = out.attack_fired || a.fired;
  }

  if (!out.attack_fired) {
    out.outcome = Outcome::kNotFired;
    out.ok = true;  // nothing to contain
    return finish();
  }
  if (out.attack_blocked) {
    out.outcome = Outcome::kDeniedMpu;
    out.ok = true;
    out.detail += " | write denied by MPU/privilege rules";
    return finish();
  }
  if (!r.ok) {
    bool by_monitor = r.violation.find("monitor") != std::string::npos;
    out.outcome = by_monitor ? Outcome::kDeniedMonitor : Outcome::kCrash;
    out.ok = true;  // contained: detected / no silent divergence
    out.detail += " | " + r.violation;
    return finish();
  }
  const Baseline& base = CleanBaseline(*factory, spec.mode, spec.engine);
  if (!base.valid) {
    throw std::runtime_error(base.error);
  }
  bool diverged = !check.empty() || r.cycles != base.cycles ||
                  r.statements != base.statements || r.return_value != base.return_value;
  if (diverged) {
    out.outcome = Outcome::kSilentCorruption;
    out.ok = false;  // never a success: the corruption landed undetected
    out.detail += check.empty() ? " | modeled outputs diverged from clean baseline"
                                : " | scenario check: " + check;
  } else {
    out.outcome = Outcome::kBenign;
    out.ok = true;
    out.detail += " | landed but run bit-identical to clean baseline";
  }
  return finish();
}

// ---------------------------------------------------------------------------
// Watchdog: one thread arming per-job cancellation flags at their deadlines.

class Watchdog {
 public:
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  uint64_t Arm(Clock::time_point deadline, std::atomic<bool>* flag) {
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t id = next_id_++;
    entries_.push_back({deadline, flag, id});
    if (!thread_.joinable()) {
      thread_ = std::thread([this] { Loop(); });
    }
    cv_.notify_all();
    return id;
  }

  void Disarm(uint64_t id) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].id == id) {
        entries_[i] = entries_.back();
        entries_.pop_back();
        return;
      }
    }
  }

 private:
  struct Entry {
    Clock::time_point deadline;
    std::atomic<bool>* flag;
    uint64_t id;
  };

  void Loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      if (entries_.empty()) {
        cv_.wait(lock);
        continue;
      }
      Clock::time_point next = entries_[0].deadline;
      for (const Entry& e : entries_) {
        next = std::min(next, e.deadline);
      }
      cv_.wait_until(lock, next);
      Clock::time_point now = Clock::now();
      for (size_t i = 0; i < entries_.size();) {
        if (entries_[i].deadline <= now) {
          entries_[i].flag->store(true, std::memory_order_relaxed);
          entries_[i] = entries_.back();
          entries_.pop_back();
        } else {
          ++i;
        }
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  std::thread thread_;
  uint64_t next_id_ = 1;
  bool stop_ = false;
};

}  // namespace

const char* JobKindName(JobKind kind) {
  return kind == JobKind::kScenario ? "scenario" : "fault";
}

const char* FaultClassName(FaultClass fault) {
  switch (fault) {
    case FaultClass::kAny:
      return "any";
    case FaultClass::kStackBitFlip:
      return "stack-bit-flip";
    case FaultClass::kShadowBitFlip:
      return "shadow-bit-flip";
    case FaultClass::kSvcArgCorrupt:
      return "svc-arg";
    case FaultClass::kIcallForge:
      return "icall-forge";
  }
  return "?";
}

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk:
      return "ok";
    case Outcome::kNotFired:
      return "not-fired";
    case Outcome::kDeniedMpu:
      return "denied-by-mpu";
    case Outcome::kDeniedMonitor:
      return "denied-by-monitor";
    case Outcome::kCrash:
      return "crash";
    case Outcome::kBenign:
      return "benign";
    case Outcome::kSilentCorruption:
      return "silent-corruption";
    case Outcome::kCheckFailed:
      return "check-failed";
    case Outcome::kViolation:
      return "violation";
    case Outcome::kException:
      return "exception";
    case Outcome::kTimeout:
      return "timeout";
    case Outcome::kRvViolation:
      return "rv-violation";
  }
  return "?";
}

void CampaignSpec::AddScenarioMatrix(const std::vector<std::string>& apps,
                                     const std::vector<opec_apps::BuildMode>& modes) {
  for (const std::string& app : apps) {
    for (opec_apps::BuildMode mode : modes) {
      JobSpec job;
      job.kind = JobKind::kScenario;
      job.app = app;
      job.mode = mode;
      jobs.push_back(std::move(job));
    }
  }
}

void CampaignSpec::AddFaultSweep(const std::vector<std::string>& apps, size_t count,
                                 FaultClass fault) {
  for (size_t i = 0; i < count; ++i) {
    JobSpec job;
    job.kind = JobKind::kFault;
    job.app = apps[i % apps.size()];
    job.mode = opec_apps::BuildMode::kOpec;
    job.fault = fault;
    jobs.push_back(std::move(job));
  }
}

std::string CampaignSpec::ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return "cannot open spec file: " + path;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseText(text.str(), path);
}

std::string CampaignSpec::ParseText(const std::string& text, const std::string& origin) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto err = [&](const std::string& msg) {
    return opec_support::StrPrintf("%s:%d: %s", origin.c_str(), lineno, msg.c_str());
  };
  std::vector<std::string> all_apps;
  for (const opec_apps::AppFactory& f : opec_apps::AllApps()) {
    all_apps.push_back(f.name);
  }
  while (std::getline(in, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream tok(line);
    std::string cmd;
    if (!(tok >> cmd)) {
      continue;  // blank / comment-only
    }
    if (cmd == "seed") {
      if (!(tok >> seed)) {
        return err("seed needs an unsigned integer");
      }
    } else if (cmd == "timeout-ms") {
      if (!(tok >> timeout_ms)) {
        return err("timeout-ms needs an unsigned integer");
      }
    } else if (cmd == "scenario") {
      std::string app, mode;
      if (!(tok >> app >> mode)) {
        return err("scenario needs: <app|all> <opec|vanilla|both>");
      }
      std::vector<std::string> apps =
          app == "all" ? all_apps : std::vector<std::string>{app};
      for (const std::string& a : apps) {
        if (FindApp(a) == nullptr) {
          return err("unknown app: " + a);
        }
      }
      std::vector<opec_apps::BuildMode> modes;
      if (mode == "opec" || mode == "both") {
        modes.push_back(opec_apps::BuildMode::kOpec);
      }
      if (mode == "vanilla" || mode == "both") {
        modes.push_back(opec_apps::BuildMode::kVanilla);
      }
      if (modes.empty()) {
        return err("unknown mode: " + mode + " (opec|vanilla|both)");
      }
      AddScenarioMatrix(apps, modes);
    } else if (cmd == "fault") {
      std::string app, cls_name;
      size_t count = 0;
      if (!(tok >> app >> count)) {
        return err("fault needs: <app|all> <count> [class]");
      }
      FaultClass cls = FaultClass::kAny;
      if (tok >> cls_name) {
        bool found = false;
        for (FaultClass c : {FaultClass::kAny, FaultClass::kStackBitFlip,
                             FaultClass::kShadowBitFlip, FaultClass::kSvcArgCorrupt,
                             FaultClass::kIcallForge}) {
          if (cls_name == FaultClassName(c)) {
            cls = c;
            found = true;
          }
        }
        if (!found) {
          return err("unknown fault class: " + cls_name);
        }
      }
      std::vector<std::string> apps =
          app == "all" ? all_apps : std::vector<std::string>{app};
      for (const std::string& a : apps) {
        if (FindApp(a) == nullptr) {
          return err("unknown app: " + a);
        }
      }
      AddFaultSweep(apps, count, cls);
    } else {
      return err("unknown directive: " + cmd);
    }
  }
  return "";
}

uint64_t CampaignResult::SerialWallNs() const {
  uint64_t sum = 0;
  for (const JobResult& r : results) {
    sum += r.wall_ns;
  }
  return sum;
}

size_t CampaignResult::CountOutcome(Outcome outcome) const {
  size_t n = 0;
  for (const JobResult& r : results) {
    n += r.outcome == outcome ? 1 : 0;
  }
  return n;
}

bool CampaignResult::AllOk() const {
  for (const JobResult& r : results) {
    if (!r.ok) {
      return false;
    }
  }
  return true;
}

namespace {

void AppendResultJson(std::ostringstream& json, const JobResult& r, bool with_timing) {
  json << "    {\"index\": " << r.index << ", \"kind\": \"" << JobKindName(r.spec.kind)
       << "\", \"app\": \"" << JsonEscape(r.spec.app) << "\", \"mode\": \""
       << ModeName(r.spec.mode) << "\"";
  if (r.spec.engine != opec_apps::EngineKind::kInterp) {
    // Non-default tier only, so interpreter reports keep their exact shape
    // and an interp-vs-bytecode report diff shows only this field.
    json << ", \"engine\": \"" << opec_apps::EngineKindName(r.spec.engine) << "\"";
  }
  json << ", \"seed\": " << r.spec.seed << ", \"fault\": \""
       << FaultClassName(r.spec.fault) << "\", \"outcome\": \"" << OutcomeName(r.outcome)
       << "\", \"ok\": " << (r.ok ? "true" : "false") << ", \"cycles\": " << r.cycles
       << ", \"statements\": " << r.statements << ", \"return_value\": " << r.return_value
       << ", \"fired\": " << (r.attack_fired ? "true" : "false")
       << ", \"blocked\": " << (r.attack_blocked ? "true" : "false")
       << ", \"events\": " << r.events;
  if (r.spec.rv) {
    json << ", \"rv\": {\"states\": " << r.rv_states << ", \"violations\": " << r.rv_violations
         << "}";
  }
  if (r.snapshot_digest != 0) {
    json << ", \"snapshot_digest\": \""
         << opec_support::StrPrintf("%016llx",
                                    static_cast<unsigned long long>(r.snapshot_digest))
         << "\"";
  }
  if (with_timing) {
    json << ", \"wall_ns\": " << r.wall_ns;
  }
  json << ", \"detail\": \"" << JsonEscape(r.detail) << "\"}";
}

std::string ResultsJson(const CampaignResult& result, bool with_timing) {
  std::ostringstream json;
  json << "{\n";
  json << "  \"schema\": \"opec-campaign-v1\",\n";
  json << "  \"job_count\": " << result.results.size() << ",\n";
  json << "  \"results\": [\n";
  for (size_t i = 0; i < result.results.size(); ++i) {
    AppendResultJson(json, result.results[i], with_timing);
    json << (i + 1 < result.results.size() ? ",\n" : "\n");
  }
  json << "  ]";
  if (with_timing) {
    uint64_t serial = result.SerialWallNs();
    json << ",\n  \"timing\": {\n";
    json << "    \"jobs_used\": " << result.jobs_used << ",\n";
    json << "    \"wall_ns\": " << result.wall_ns << ",\n";
    json << "    \"serial_wall_ns\": " << serial << ",\n";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f",
                  result.wall_ns == 0 ? 0.0
                                      : static_cast<double>(serial) /
                                            static_cast<double>(result.wall_ns));
    json << "    \"parallel_speedup\": " << buf << "\n";
    json << "  }";
    // Distributed-executor scheduling stats (DESIGN.md §16). Timing-report
    // only: queue depth and in-flight counts depend on worker speed and join
    // order, so they must never appear in the deterministic report.
    if (result.dist.active) {
      const DistStats& d = result.dist;
      json << ",\n  \"dist\": {\n";
      json << "    \"workers\": " << d.workers << ",\n";
      json << "    \"workers_died\": " << d.workers_died << ",\n";
      json << "    \"units_issued\": " << d.units_issued << ",\n";
      json << "    \"units_reissued\": " << d.units_reissued << ",\n";
      json << "    \"leases_expired\": " << d.leases_expired << ",\n";
      json << "    \"queue_high_water\": " << d.queue_high_water << ",\n";
      json << "    \"links_lost\": " << d.links_lost << ",\n";
      json << "    \"reconnects\": " << d.reconnects << ",\n";
      json << "    \"peers_rejected\": " << d.peers_rejected << ",\n";
      json << "    \"late_results\": " << d.late_results << ",\n";
      json << "    \"chunks_sent\": " << d.chunks_sent << ",\n";
      json << "    \"adaptive_units\": " << (d.adaptive_units ? "true" : "false") << ",\n";
      json << "    \"unit_size_min\": " << d.unit_size_min << ",\n";
      json << "    \"unit_size_max\": " << d.unit_size_max << ",\n";
      json << "    \"max_inflight\": [";
      for (size_t i = 0; i < d.max_inflight.size(); ++i) {
        json << (i == 0 ? "" : ", ") << d.max_inflight[i];
      }
      json << "],\n";
      json << "    \"artifacts\": {\"hits\": " << d.artifact_hits
           << ", \"misses\": " << d.artifact_misses
           << ", \"evictions\": " << d.artifact_evictions
           << ", \"digest_mismatches\": " << d.artifact_digest_mismatches << "}\n";
      json << "  }";
    }
  }
  json << "\n}\n";
  return json.str();
}

}  // namespace

std::string CampaignResult::DeterministicJson() const { return ResultsJson(*this, false); }

std::string CampaignResult::Json() const { return ResultsJson(*this, true); }

std::string CampaignResult::FaultMatrix() const {
  constexpr Outcome kCols[] = {Outcome::kNotFired,   Outcome::kDeniedMpu,
                               Outcome::kDeniedMonitor, Outcome::kCrash,
                               Outcome::kBenign,     Outcome::kSilentCorruption,
                               Outcome::kRvViolation, Outcome::kException,
                               Outcome::kTimeout};
  auto render = [&](const std::string& key_header,
                    const std::function<std::string(const JobResult&)>& key_of) {
    std::vector<std::string> headers{key_header};
    for (Outcome c : kCols) {
      headers.push_back(OutcomeName(c));
    }
    opec_support::Table table(std::move(headers));
    std::vector<std::string> keys;
    std::map<std::string, std::map<Outcome, size_t>> counts;
    for (const JobResult& r : results) {
      if (r.spec.kind != JobKind::kFault) {
        continue;
      }
      std::string key = key_of(r);
      if (counts.find(key) == counts.end()) {
        keys.push_back(key);
      }
      ++counts[key][r.outcome];
    }
    for (const std::string& key : keys) {
      std::vector<std::string> row{key};
      for (Outcome c : kCols) {
        row.push_back(std::to_string(counts[key][c]));
      }
      table.AddRow(std::move(row));
    }
    return table.ToString();
  };
  std::string out = "Fault-injection robustness matrix (by application):\n";
  out += render("Application", [](const JobResult& r) { return r.spec.app; });
  out += "\nFault-injection robustness matrix (by fault class):\n";
  out += render("Fault class", [](const JobResult& r) {
    return std::string(FaultClassName(r.spec.fault));
  });
  return out;
}

JobSpec ResolveJobSpec(const JobSpec& job, size_t index, uint64_t campaign_seed,
                       uint64_t campaign_timeout_ms, uint64_t default_timeout_ms,
                       const std::string& trace_dir) {
  JobSpec resolved = job;
  if (resolved.seed == 0) {
    resolved.seed = SplitMix64::JobSeed(campaign_seed, index);
  }
  if (resolved.timeout_ms == 0) {
    resolved.timeout_ms = default_timeout_ms != 0 ? default_timeout_ms : campaign_timeout_ms;
  }
  if (!trace_dir.empty() && resolved.trace_path.empty()) {
    resolved.trace_path = opec_support::StrPrintf(
        "%s/job%04zu_%s_%s.trace.json", trace_dir.c_str(), index,
        AppKey(resolved.app).c_str(), ModeName(resolved.mode));
  }
  return resolved;
}

struct JobRunner::Impl {
  Watchdog watchdog;
};

JobRunner::JobRunner() : impl_(std::make_unique<Impl>()) {}
JobRunner::~JobRunner() = default;

JobResult JobRunner::Run(const JobSpec& resolved, size_t index, const JobEnv& env) {
  Clock::time_point job_t0 = Clock::now();
  JobResult result;
  std::atomic<bool> cancel{false};
  uint64_t watchdog_id = 0;
  if (resolved.timeout_ms != 0) {
    watchdog_id = impl_->watchdog.Arm(
        job_t0 + std::chrono::milliseconds(resolved.timeout_ms), &cancel);
  }
  try {
    opec_support::ScopedCheckThrow check_throw;
    result = RunJobImpl(resolved, index, resolved.timeout_ms != 0 ? &cancel : nullptr, env);
  } catch (const std::exception& e) {
    result.index = index;
    result.spec = resolved;
    result.ok = false;
    result.outcome = Outcome::kException;
    result.detail = e.what();
  } catch (...) {
    result.index = index;
    result.spec = resolved;
    result.ok = false;
    result.outcome = Outcome::kException;
    result.detail = "unknown exception";
  }
  if (watchdog_id != 0) {
    impl_->watchdog.Disarm(watchdog_id);
  }
  result.wall_ns = NsSince(job_t0);
  return result;
}

JobResult RunJob(const JobSpec& spec, uint64_t campaign_seed, size_t index) {
  return RunJob(spec, campaign_seed, index, JobEnv{});
}

JobResult RunJob(const JobSpec& spec, uint64_t campaign_seed, size_t index,
                 const JobEnv& env) {
  JobSpec resolved = spec;
  if (resolved.seed == 0) {
    resolved.seed = SplitMix64::JobSeed(campaign_seed, index);
  }
  return RunJobImpl(resolved, index, nullptr, env);
}

CampaignResult Executor::Run(const CampaignSpec& spec, const Options& options) {
  CampaignResult out;
  out.jobs_used = std::max(1, options.jobs);
  Clock::time_point t0 = Clock::now();
  JobEnv env;
  env.cold_boot = options.cold_boot;
  env.snapshot_dir = options.snapshot_dir;
  // Create output directories up front so a bad path is one clear error here,
  // not an OPEC_CHECK abort (or a report full of kException rows) when the
  // first diverging job tries to dump state (see tests: SnapshotDirUnwritable).
  for (const std::string& dir : {options.snapshot_dir, options.trace_dir}) {
    if (!dir.empty()) {
      std::string err = opec_support::EnsureDirs(dir);
      if (!err.empty()) {
        throw std::runtime_error("campaign output directory unusable: " + err);
      }
    }
  }
  JobRunner runner;

  out.results = ParallelMap(out.jobs_used, spec.jobs.size(), [&](size_t i) {
    JobSpec job = ResolveJobSpec(spec.jobs[i], i, spec.seed, spec.timeout_ms,
                                 options.default_timeout_ms, options.trace_dir);
    return runner.Run(job, i, env);
  });

  out.wall_ns = NsSince(t0);
  return out;
}

}  // namespace opec_campaign
