#include "src/campaign/thread_pool.h"

#include <algorithm>

#include "src/support/check.h"

namespace opec_campaign {

ThreadPool::ThreadPool(int threads, size_t queue_capacity)
    : queue_capacity_(std::max<size_t>(queue_capacity, 1)) {
  unsigned hw = std::thread::hardware_concurrency();
  int max_threads = static_cast<int>(hw == 0 ? 4 : hw * 4);
  int n = std::clamp(threads, 1, max_threads);
  workers_.resize(static_cast<size_t>(n));
  for (size_t i = 0; i < workers_.size(); ++i) {
    workers_[i].thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (Worker& w : workers_) {
    w.thread.join();
  }
}

void ThreadPool::Submit(std::function<void()> job) {
  OPEC_CHECK(job != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_has_space_.wait(lock, [this] { return queued_ < queue_capacity_; });
    workers_[next_worker_].queue.push_back(std::move(job));
    next_worker_ = (next_worker_ + 1) % workers_.size();
    ++queued_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

uint64_t ThreadPool::steals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return steals_;
}

bool ThreadPool::PopOrSteal(size_t self, std::function<void()>* job) {
  Worker& own = workers_[self];
  if (!own.queue.empty()) {
    *job = std::move(own.queue.front());
    own.queue.pop_front();
    return true;
  }
  // Steal from the sibling with the deepest queue (back end, so the victim's
  // front-of-queue locality is preserved).
  size_t victim = self;
  size_t best = 0;
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (i != self && workers_[i].queue.size() > best) {
      best = workers_[i].queue.size();
      victim = i;
    }
  }
  if (victim == self) {
    return false;
  }
  *job = std::move(workers_[victim].queue.back());
  workers_[victim].queue.pop_back();
  ++steals_;
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this, self] {
        if (shutdown_) {
          return true;
        }
        if (!workers_[self].queue.empty()) {
          return true;
        }
        return queued_ != 0;  // something stealable somewhere
      });
      if (!PopOrSteal(self, &job)) {
        if (shutdown_) {
          return;
        }
        continue;  // lost the race for the stealable job
      }
      --queued_;
      ++running_;
    }
    queue_has_space_.notify_one();
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (queued_ == 0 && running_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

}  // namespace opec_campaign
