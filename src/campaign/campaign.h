// opec_campaign: parallel campaign execution over isolated Machine/AppRun
// instances (DESIGN.md Section 11).
//
// A campaign is a job matrix — apps x build modes x seeds, scenario runs or
// fault-injection runs — executed by a work-stealing thread pool. Every job
// builds its own Module/Machine/AppRun from scratch (the harness has no
// process-global mutable state; the obs Hub is thread-local), so jobs are
// fully isolated and the aggregated result is bit-identical whether the
// campaign runs on one thread or many:
//   * results are placed by job index, never by completion order;
//   * each job derives all randomness from a SplitMix64 PRNG seeded by
//     (campaign seed, job index) — nothing touches global rand();
//   * a crashing job (host exception, OPEC_CHECK failure via ScopedCheckThrow,
//     wall-clock timeout) becomes a structured JobResult failure and never
//     takes down the campaign;
//   * DeterministicJson() excludes wall-clock fields, so `--jobs 1` and
//     `--jobs N` reports compare byte-identical.

#ifndef SRC_CAMPAIGN_CAMPAIGN_H_
#define SRC_CAMPAIGN_CAMPAIGN_H_

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/all_apps.h"
#include "src/apps/runner.h"
#include "src/campaign/thread_pool.h"

namespace opec_campaign {

// ---------------------------------------------------------------------------
// Deterministic parallel map.

// Runs fn(0), ..., fn(count - 1) on `jobs` workers and returns the results in
// index order. jobs <= 1 runs inline on the calling thread — exactly the
// serial path, no pool. Exceptions propagate: after all jobs finish, the
// lowest-index captured exception (if any) is rethrown.
template <typename Fn>
auto ParallelMap(int jobs, size_t count, Fn&& fn)
    -> std::vector<decltype(fn(size_t{0}))> {
  using T = decltype(fn(size_t{0}));
  std::vector<T> results(count);
  if (jobs <= 1) {
    for (size_t i = 0; i < count; ++i) {
      results[i] = fn(i);
    }
    return results;
  }
  std::vector<std::exception_ptr> errors(count);
  {
    ThreadPool pool(jobs);
    for (size_t i = 0; i < count; ++i) {
      pool.Submit([&, i] {
        try {
          results[i] = fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.Wait();
  }
  for (std::exception_ptr& e : errors) {
    if (e != nullptr) {
      std::rethrow_exception(e);
    }
  }
  return results;
}

// ---------------------------------------------------------------------------
// Per-job PRNG: SplitMix64. Small, splittable, and completely decoupled from
// the C library's global rand() state.

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  // Uniform in [0, bound); bound 0 returns 0.
  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }
  uint32_t Next32() { return static_cast<uint32_t>(Next() >> 32); }

  // Seed for job `index` of a campaign seeded with `campaign_seed`.
  //
  // Mixing contract: distinct (campaign_seed, index) pairs must yield
  // distinct, statistically independent streams. Both inputs therefore pass
  // through the full SplitMix64 finalizer *sequentially*: the campaign seed
  // is finalized first (one Next()), then the index — scaled by an odd
  // constant so nearby indices land far apart in gamma space — offsets the
  // finalized state before a second Next(). An earlier scheme XORed
  // (index * kOdd + 1) straight into the raw seed before a single Next();
  // being XOR-linear pre-finalizer, it collided whole streams across
  // campaigns whenever campaign_seed ^ campaign_seed' ==
  // (index * kOdd + 1) ^ (index' * kOdd + 1) — in particular index == 0
  // degenerated to seed ^ 1, so JobSeed(s, 0) equaled
  // JobSeed(s ^ 1 ^ (i * kOdd + 1), i) for every i. Finalizing between the
  // two mixes breaks the linearity (see campaign_test.cc, JobSeedMixing*).
  static uint64_t JobSeed(uint64_t campaign_seed, uint64_t index) {
    constexpr uint64_t kOdd = 0xA24BAED4963EE407ull;
    SplitMix64 g(campaign_seed);
    SplitMix64 h(g.Next() + index * kOdd);
    return h.Next();
  }

 private:
  uint64_t state_;
};

// ---------------------------------------------------------------------------
// Job and campaign descriptions.

enum class JobKind : uint8_t {
  kScenario,  // clean run: build, execute, check scenario outputs
  kFault,     // fault-injection run: mutate guest state, classify the outcome
};

// The fault-injection taxonomy (DESIGN.md Section 11.3).
enum class FaultClass : uint8_t {
  kAny,            // planner picks per-seed
  kStackBitFlip,   // flip a bit in the operation stack region
  kShadowBitFlip,  // flip a bit in an operation data section / shadow copy
  kSvcArgCorrupt,  // corrupt an argument of an operation-entry SVC
  kIcallForge,     // overwrite a function-pointer global with a forged target
};

const char* JobKindName(JobKind kind);
const char* FaultClassName(FaultClass fault);

struct JobSpec {
  JobKind kind = JobKind::kScenario;
  std::string app;  // registry name, e.g. "PinLock" (see opec_apps::AllApps)
  opec_apps::BuildMode mode = opec_apps::BuildMode::kOpec;
  // Execution tier. Modeled outputs are bit-identical across tiers, so the
  // deterministic report only records it when it is not the default.
  opec_apps::EngineKind engine = opec_apps::EngineKind::kInterp;
  uint64_t seed = 0;          // per-job PRNG seed (0 = derive from campaign)
  FaultClass fault = FaultClass::kAny;
  uint64_t timeout_ms = 0;    // 0 = campaign default
  std::string trace_path;     // non-empty: export a Chrome trace of the run
  bool attach_counting_sink = false;  // obs-invariance checks
  // Runtime-verification monitors (src/rv, DESIGN.md §15). On by default: a
  // clean-looking run that trips a safety automaton becomes kRvViolation;
  // denied/crashed fault jobs keep their outcome with the violation counts
  // recorded alongside.
  bool rv = true;
};

struct CampaignSpec {
  uint64_t seed = 1;
  uint64_t timeout_ms = 0;  // 0 = no timeout
  std::vector<JobSpec> jobs;

  // One scenario job per (app x mode). App names are registry names.
  void AddScenarioMatrix(const std::vector<std::string>& apps,
                         const std::vector<opec_apps::BuildMode>& modes);
  // `count` fault jobs round-robined over `apps` (OPEC mode), classes chosen
  // per-seed when `fault` is kAny.
  void AddFaultSweep(const std::vector<std::string>& apps, size_t count,
                     FaultClass fault = FaultClass::kAny);

  // Parses a line-oriented spec file:
  //   seed <u64>
  //   timeout-ms <u64>
  //   scenario <app-key|all> <opec|vanilla|both>
  //   fault <app-key|all> <count> [stack-bit-flip|shadow-bit-flip|svc-arg|
  //                                icall-forge|any]
  // '#' starts a comment. Returns an empty string on success, else the error.
  std::string ParseFile(const std::string& path);
  std::string ParseText(const std::string& text, const std::string& origin);
};

// How a job ended. The first four are the fault-injection outcome taxonomy;
// the rest report harness-level failures.
enum class Outcome : uint8_t {
  kOk,                // scenario job: ran and checked clean
  kNotFired,          // fault job: the planned attack never triggered
  kDeniedMpu,         // the MPU/privilege rules blocked the injected write
  kDeniedMonitor,     // the monitor detected it (rejected entry/sanitization)
  kCrash,             // the corrupted guest aborted (fault, bad icall, ...)
  kBenign,            // landed, run bit-identical to the clean baseline
  kSilentCorruption,  // landed, outputs diverged, nothing detected it (FAIL)
  kCheckFailed,       // scenario job: run ok but scenario outputs wrong
  kViolation,         // scenario job: run aborted with a violation
  kException,         // host exception / OPEC_CHECK captured by the executor
  kTimeout,           // wall-clock deadline expired; run canceled
  kRvViolation,       // run looked clean but a safety automaton fired (FAIL)
};

const char* OutcomeName(Outcome outcome);

// Distributed-execution statistics (src/dist, DESIGN.md §16). Host-side
// scheduling observability — queue depth, lease churn, per-worker in-flight
// peaks, artifact-cache traffic. None of it is modeled data, so it is
// rendered only by CampaignResult::Json() (the timing report) and never by
// DeterministicJson(): byte-identity across worker counts is preserved.
struct DistStats {
  bool active = false;          // a distributed executor produced this result
  uint64_t workers = 0;         // distinct workers that ever joined
  uint64_t workers_died = 0;    // connections lost before shutdown (no resume)
  uint64_t units_issued = 0;    // work-unit leases handed out (incl. re-issues)
  uint64_t units_reissued = 0;  // units re-queued after worker death
  uint64_t leases_expired = 0;  // units re-queued after lease timeout
  uint64_t queue_high_water = 0;  // max pending jobs observed
  uint64_t artifact_hits = 0;     // worker cache hits (snapshots + modules)
  uint64_t artifact_misses = 0;
  uint64_t artifact_evictions = 0;
  uint64_t artifact_digest_mismatches = 0;  // corrupt/mismatched artifacts rejected
  // Fleet hardening (protocol v2).
  uint64_t links_lost = 0;      // resumable links dropped (leases parked)
  uint64_t reconnects = 0;      // worker ids that rejoined after a drop
  uint64_t peers_rejected = 0;  // auth / allow-list / version refusals
  uint64_t late_results = 0;    // result frames landing without a live lease
  uint64_t chunks_sent = 0;     // artifact chunk frames streamed
  bool adaptive_units = false;  // EWMA-driven unit sizing was active
  uint64_t unit_size_min = 0;   // smallest/largest unit carved (0 = none)
  uint64_t unit_size_max = 0;
  std::vector<uint64_t> max_inflight;       // per worker, peak leased units
};

struct JobResult {
  size_t index = 0;
  JobSpec spec;           // echo (with the effective seed/fault class filled in)
  bool ok = false;        // "this job is a success" — silent corruption never is
  Outcome outcome = Outcome::kException;
  std::string detail;     // violation text / exception message / attack note
  // Modeled outputs (host-invariant; part of the deterministic report).
  uint64_t cycles = 0;
  uint64_t statements = 0;
  uint32_t return_value = 0;
  bool attack_fired = false;
  bool attack_blocked = false;
  uint64_t events = 0;    // counting-sink total, when attached
  // Runtime-verification summary (when the job ran with spec.rv): distinct
  // automaton states visited, total violations, and per-automaton violation
  // counts in StandardMonitorNames() order. Modeled data — part of the
  // deterministic report.
  uint64_t rv_states = 0;
  uint64_t rv_violations = 0;
  std::vector<uint64_t> rv_by_automaton;
  // Final-state snapshot digest for diverging jobs when the executor ran with
  // a snapshot dir (0 = no snapshot taken). Derived from modeled state only,
  // so it is part of the deterministic report.
  uint64_t snapshot_digest = 0;
  // Host timing (excluded from the deterministic report).
  uint64_t wall_ns = 0;
};

struct CampaignResult {
  std::vector<JobResult> results;  // indexed by job; always |spec.jobs| long
  int jobs_used = 1;
  uint64_t wall_ns = 0;  // elapsed campaign wall-clock
  DistStats dist;        // populated by the distributed executor only

  uint64_t SerialWallNs() const;  // sum of per-job wall times
  size_t CountOutcome(Outcome outcome) const;
  bool AllOk() const;

  // Aggregated report without any wall-clock field: byte-identical across
  // thread counts for the same spec.
  std::string DeterministicJson() const;
  // Full report: deterministic fields + per-job and campaign timing.
  std::string Json() const;
  // Table-1-style robustness matrix: app x fault class x outcome counts.
  std::string FaultMatrix() const;
};

// ---------------------------------------------------------------------------
// Executor.

class Executor {
 public:
  struct Options {
    int jobs = 1;
    uint64_t default_timeout_ms = 0;  // overrides spec.timeout_ms when nonzero
    std::string trace_dir;  // non-empty: per-job Chrome traces written here
    // Warm start (DESIGN.md §13): each worker thread keeps one booted AppRun
    // per (app, mode) and forks every job from its post-boot snapshot instead
    // of rebuilding module + compile + image from scratch. Results are
    // bit-identical to cold boots (campaign_test.cc pins this); set cold_boot
    // to force the from-scratch path anyway.
    bool cold_boot = false;
    // Non-empty: diverging jobs (outcome other than ok / not-fired / benign)
    // dump their final machine+monitor+engine snapshot here as
    // job%04d_<app>_<mode>.snap, plus one raw machine-state dump per denied
    // access (crash-state forensics; fault-state capture is enabled on the
    // engine so FaultReport::machine_state is populated).
    std::string snapshot_dir;
  };

  // Runs the campaign on the in-process thread pool. Throws std::runtime_error
  // (not an OPEC_CHECK abort) when options.snapshot_dir cannot be created —
  // parents are created up front so jobs never trip over a missing directory.
  static CampaignResult Run(const CampaignSpec& spec, const Options& options);
};

// ---------------------------------------------------------------------------
// Per-job execution path shared between the in-process Executor and the
// distributed workers (src/dist). Keeping resolution + execution here is what
// pins the dist service's byte-identity: a worker process runs exactly the
// code path `campaign --jobs 1` runs.

// Executor-level knobs threaded into each job (see Executor::Options).
struct JobEnv {
  // Default cold: standalone RunJob() stays fully from-scratch; the executor
  // and dist workers opt into the warm-start pool explicitly.
  bool cold_boot = true;
  std::string snapshot_dir;
  // Non-null: overrides the built-in thread-local warm-run pool. The dist
  // worker plugs its artifact-cache-backed pool in here. The returned AppRun
  // must already be rewound to its boot snapshot.
  std::function<opec_apps::AppRun*(const opec_apps::AppFactory& factory,
                                   opec_apps::BuildMode mode, opec_apps::EngineKind engine)>
      warm_provider;
};

// Fills the derived fields of a job exactly the way Executor::Run does:
// seed from SplitMix64::JobSeed when 0, timeout from the executor default
// then the campaign spec, trace path from trace_dir. Pure function — the
// dist server resolves jobs with this before shipping them to workers.
JobSpec ResolveJobSpec(const JobSpec& job, size_t index, uint64_t campaign_seed,
                       uint64_t campaign_timeout_ms, uint64_t default_timeout_ms,
                       const std::string& trace_dir);

// The per-job harness Executor::Run wraps around RunJob: wall-clock watchdog
// arming the engine cancel flag, ScopedCheckThrow capture, and structured
// kException results for anything thrown. One instance is reusable across
// jobs (it owns the watchdog thread).
class JobRunner {
 public:
  JobRunner();
  ~JobRunner();
  JobRunner(const JobRunner&) = delete;
  JobRunner& operator=(const JobRunner&) = delete;

  // `resolved` must already have seed/timeout filled in (see ResolveJobSpec).
  JobResult Run(const JobSpec& resolved, size_t index, const JobEnv& env);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Runs one job in isolation on the calling thread (no timeout handling; the
// Executor layers that on top). Exposed for tests and the serial path.
JobResult RunJob(const JobSpec& spec, uint64_t campaign_seed, size_t index);
// As above with an explicit environment (warm pool / snapshot dir).
JobResult RunJob(const JobSpec& spec, uint64_t campaign_seed, size_t index,
                 const JobEnv& env);

}  // namespace opec_campaign

#endif  // SRC_CAMPAIGN_CAMPAIGN_H_
