#include "src/ir/builder.h"

#include "src/support/check.h"

namespace opec_ir {

namespace {
Val Bin(BinaryOp op, const Val& a, const Val& b) {
  return {MakeBinary(op, a.expr->type, a.expr, b.expr)};
}
}  // namespace

Val operator+(const Val& a, const Val& b) { return Bin(BinaryOp::kAdd, a, b); }
Val operator-(const Val& a, const Val& b) { return Bin(BinaryOp::kSub, a, b); }
Val operator*(const Val& a, const Val& b) { return Bin(BinaryOp::kMul, a, b); }
Val operator/(const Val& a, const Val& b) { return Bin(BinaryOp::kDiv, a, b); }
Val operator%(const Val& a, const Val& b) { return Bin(BinaryOp::kRem, a, b); }
Val operator&(const Val& a, const Val& b) { return Bin(BinaryOp::kAnd, a, b); }
Val operator|(const Val& a, const Val& b) { return Bin(BinaryOp::kOr, a, b); }
Val operator^(const Val& a, const Val& b) { return Bin(BinaryOp::kXor, a, b); }
Val operator<<(const Val& a, const Val& b) { return Bin(BinaryOp::kShl, a, b); }
Val operator>>(const Val& a, const Val& b) { return Bin(BinaryOp::kShr, a, b); }
Val operator==(const Val& a, const Val& b) { return Bin(BinaryOp::kEq, a, b); }
Val operator!=(const Val& a, const Val& b) { return Bin(BinaryOp::kNe, a, b); }
Val operator<(const Val& a, const Val& b) { return Bin(BinaryOp::kLt, a, b); }
Val operator<=(const Val& a, const Val& b) { return Bin(BinaryOp::kLe, a, b); }
Val operator>(const Val& a, const Val& b) { return Bin(BinaryOp::kGt, a, b); }
Val operator>=(const Val& a, const Val& b) { return Bin(BinaryOp::kGe, a, b); }
Val operator&&(const Val& a, const Val& b) { return Bin(BinaryOp::kLogAnd, a, b); }
Val operator||(const Val& a, const Val& b) { return Bin(BinaryOp::kLogOr, a, b); }
Val operator!(const Val& a) { return {MakeUnary(UnaryOp::kLogNot, a.expr)}; }
Val operator-(const Val& a) { return {MakeUnary(UnaryOp::kNeg, a.expr)}; }
Val operator~(const Val& a) { return {MakeUnary(UnaryOp::kBitNot, a.expr)}; }

// A control-flow scope currently being built.
struct FunctionBuilder::Scope {
  enum class Kind { kFunction, kIfThen, kIfElse, kWhile } kind;
  ExprPtr cond;                    // for kIfThen/kIfElse/kWhile
  std::vector<StmtPtr> stmts;      // statements of the active block
  std::vector<StmtPtr> then_save;  // kIfElse: the completed then-block
};

FunctionBuilder::FunctionBuilder(Module& module, Function* fn) : module_(module), fn_(fn) {
  OPEC_CHECK(fn != nullptr);
  scopes_.push_back({Scope::Kind::kFunction, nullptr, {}, {}});
}

FunctionBuilder::~FunctionBuilder() {
  // Builders must be finished explicitly; an unfinished builder in a test
  // usually indicates a missing End()/Finish() pair, surfaced via CHECK in
  // Finish(), not here (destructors must not abort during unwinding).
}

std::vector<StmtPtr>& FunctionBuilder::CurrentBlock() {
  OPEC_CHECK(!finished_);
  return scopes_.back().stmts;
}

void FunctionBuilder::Emit(StmtPtr s) { CurrentBlock().push_back(std::move(s)); }

Val FunctionBuilder::C(const Type* type, int64_t v) { return {MakeIntConst(type, v)}; }

Val FunctionBuilder::Null(const Type* ptr_type) {
  OPEC_CHECK(ptr_type->IsPointer());
  return {MakeIntConst(ptr_type, 0)};
}

Val FunctionBuilder::L(const std::string& name) const {
  const auto& locals = fn_->locals();
  for (size_t i = 0; i < locals.size(); ++i) {
    if (locals[i].name == name) {
      return {MakeLocal(locals[i].type, static_cast<int>(i))};
    }
  }
  OPEC_UNREACHABLE("no such local: " + name + " in " + fn_->name());
}

Val FunctionBuilder::Local(const std::string& name, const Type* type) {
  int slot = fn_->AddLocal(name, type);
  return {MakeLocal(type, slot)};
}

Val FunctionBuilder::G(const std::string& name) const {
  GlobalVariable* gv = module_.FindGlobal(name);
  OPEC_CHECK_MSG(gv != nullptr, "no such global: " + name);
  return {MakeGlobal(gv)};
}

Val FunctionBuilder::FnPtr(const std::string& fn_name) {
  Function* fn = module_.FindFunction(fn_name);
  OPEC_CHECK_MSG(fn != nullptr, "no such function: " + fn_name);
  return {MakeFuncAddr(module_.types().PointerTo(fn->type()), fn)};
}

Val FunctionBuilder::Addr(const Val& lvalue) {
  return {MakeAddrOf(module_.types().PointerTo(lvalue.expr->type), lvalue.expr)};
}

Val FunctionBuilder::Idx(const Val& base, uint32_t index) { return Idx(base, U32(index)); }

Val FunctionBuilder::Fld(const Val& base, const std::string& field) const {
  int idx = base.expr->type->FieldIndex(field);
  OPEC_CHECK_MSG(idx >= 0, "no field '" + field + "' in " + base.expr->type->ToString());
  return {MakeField(base.expr, idx)};
}

Val FunctionBuilder::Mmio32(uint32_t addr) {
  const Type* p = module_.types().PointerTo(module_.types().U32());
  return {MakeDeref(MakeCast(p, MakeIntConst(module_.types().U32(), addr)))};
}

Val FunctionBuilder::Coerce(const Type* want, const Val& v) const {
  if (want == v.expr->type) {
    return v;
  }
  if (want->IsInt() && v.expr->type->IsInt()) {
    return {MakeCast(want, v.expr)};
  }
  if (want->IsPointer() && v.expr->type->IsPointer()) {
    return {MakeCast(want, v.expr)};
  }
  if (want->IsPointer() && v.expr->type->IsInt()) {
    // Integer literal 0 as a null pointer.
    OPEC_CHECK_MSG(v.expr->kind == ExprKind::kIntConst && v.expr->int_value == 0,
                   "implicit int-to-pointer conversion (only literal 0 allowed)");
    return {MakeIntConst(want, 0)};
  }
  OPEC_UNREACHABLE("cannot convert " + v.expr->type->ToString() + " to " + want->ToString());
}

std::vector<ExprPtr> FunctionBuilder::CoerceArgs(const Type* signature, std::vector<Val>& args) {
  OPEC_CHECK_MSG(args.size() == signature->params().size(),
                 "call arity mismatch (" + std::to_string(args.size()) + " vs " +
                     std::to_string(signature->params().size()) + ")");
  std::vector<ExprPtr> out;
  out.reserve(args.size());
  for (size_t i = 0; i < args.size(); ++i) {
    out.push_back(Coerce(signature->params()[i], args[i]).expr);
  }
  return out;
}

Val FunctionBuilder::CallV(const std::string& fn_name, std::vector<Val> args) {
  Function* fn = module_.FindFunction(fn_name);
  OPEC_CHECK_MSG(fn != nullptr, "no such function: " + fn_name);
  return {MakeCall(fn, CoerceArgs(fn->type(), args))};
}

void FunctionBuilder::Call(const std::string& fn_name, std::vector<Val> args) {
  Emit(MakeExprStmt(CallV(fn_name, std::move(args)).expr));
}

Val FunctionBuilder::ICallV(const Type* signature, const Val& fn_ptr, std::vector<Val> args) {
  std::vector<ExprPtr> coerced = CoerceArgs(signature, args);
  return {MakeICall(signature, fn_ptr.expr, std::move(coerced))};
}

void FunctionBuilder::ICall(const Type* signature, const Val& fn_ptr, std::vector<Val> args) {
  Emit(MakeExprStmt(ICallV(signature, fn_ptr, std::move(args)).expr));
}

void FunctionBuilder::Assign(const Val& lvalue, const Val& value) {
  Emit(MakeAssign(lvalue.expr, Coerce(lvalue.expr->type, value).expr));
}

void FunctionBuilder::Do(const Val& expr) { Emit(MakeExprStmt(expr.expr)); }

void FunctionBuilder::If(const Val& cond) {
  scopes_.push_back({Scope::Kind::kIfThen, cond.expr, {}, {}});
}

void FunctionBuilder::Else() {
  OPEC_CHECK_MSG(scopes_.back().kind == Scope::Kind::kIfThen, "Else() without open If()");
  Scope s = std::move(scopes_.back());
  scopes_.pop_back();
  scopes_.push_back({Scope::Kind::kIfElse, s.cond, {}, std::move(s.stmts)});
}

void FunctionBuilder::While(const Val& cond) {
  scopes_.push_back({Scope::Kind::kWhile, cond.expr, {}, {}});
}

void FunctionBuilder::End() {
  OPEC_CHECK_MSG(scopes_.size() > 1, "End() without open scope");
  Scope s = std::move(scopes_.back());
  scopes_.pop_back();
  switch (s.kind) {
    case Scope::Kind::kIfThen:
      Emit(MakeIf(s.cond, std::move(s.stmts), {}));
      break;
    case Scope::Kind::kIfElse:
      Emit(MakeIf(s.cond, std::move(s.then_save), std::move(s.stmts)));
      break;
    case Scope::Kind::kWhile:
      Emit(MakeWhile(s.cond, std::move(s.stmts)));
      break;
    case Scope::Kind::kFunction:
      OPEC_UNREACHABLE("End() on function scope; call Finish()");
  }
}

void FunctionBuilder::Break() { Emit(MakeBreak()); }

void FunctionBuilder::Continue() { Emit(MakeContinue()); }

void FunctionBuilder::Ret(const Val& value) {
  const Type* want = fn_->type()->return_type();
  OPEC_CHECK_MSG(!want->IsVoid(), fn_->name() + " returns void; use RetVoid()");
  Emit(MakeReturn(Coerce(want, value).expr));
}

void FunctionBuilder::RetVoid() {
  OPEC_CHECK_MSG(fn_->type()->return_type()->IsVoid(),
                 fn_->name() + " returns a value; use Ret(v)");
  Emit(MakeReturn(nullptr));
}

void FunctionBuilder::Finish() {
  OPEC_CHECK_MSG(scopes_.size() == 1, "Finish() with unclosed control-flow scopes in " +
                                          fn_->name());
  OPEC_CHECK(!finished_);
  fn_->set_body(std::move(scopes_.back().stmts));
  scopes_.clear();
  finished_ = true;
}

}  // namespace opec_ir
