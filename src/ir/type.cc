#include "src/ir/type.h"

#include "src/support/check.h"
#include "src/support/text.h"

namespace opec_ir {

namespace {

uint32_t AlignUp(uint32_t value, uint32_t align) { return (value + align - 1) & ~(align - 1); }

std::string TypeKey(const Type& t);

std::string KindKey(const Type& t) {
  switch (t.kind()) {
    case TypeKind::kVoid:
      return "void";
    case TypeKind::kInt:
      return opec_support::StrPrintf("%c%u", t.is_signed() ? 'i' : 'u', t.bit_width());
    case TypeKind::kPointer:
      return TypeKey(*t.pointee()) + "*";
    case TypeKind::kArray:
      return opec_support::StrPrintf("%s[%u]", TypeKey(*t.element()).c_str(), t.count());
    case TypeKind::kStruct:
      return "struct " + t.struct_name();
    case TypeKind::kFunction: {
      std::string key = TypeKey(*t.return_type()) + "(";
      for (size_t i = 0; i < t.params().size(); ++i) {
        if (i != 0) {
          key += ",";
        }
        key += TypeKey(*t.params()[i]);
      }
      if (t.is_variadic()) {
        key += ",...";
      }
      key += ")";
      return key;
    }
  }
  OPEC_UNREACHABLE("bad TypeKind");
}

std::string TypeKey(const Type& t) { return KindKey(t); }

}  // namespace

int Type::FieldIndex(const std::string& name) const {
  OPEC_CHECK(kind_ == TypeKind::kStruct);
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string Type::ToString() const { return TypeKey(*this); }

TypeTable::TypeTable() {
  auto v = std::unique_ptr<Type>(new Type());
  v->kind_ = TypeKind::kVoid;
  void_ = Intern(std::move(v), "void");
  i8_ = IntTy(8, true);
  i16_ = IntTy(16, true);
  i32_ = IntTy(32, true);
  u8_ = IntTy(8, false);
  u16_ = IntTy(16, false);
  u32_ = IntTy(32, false);
}

const Type* TypeTable::Intern(std::unique_ptr<Type> t, const std::string& key) {
  auto it = interned_.find(key);
  if (it != interned_.end()) {
    return it->second;
  }
  const Type* raw = t.get();
  owned_.push_back(std::move(t));
  interned_[key] = raw;
  return raw;
}

const Type* TypeTable::IntTy(uint32_t bit_width, bool is_signed) {
  OPEC_CHECK(bit_width == 8 || bit_width == 16 || bit_width == 32);
  auto t = std::unique_ptr<Type>(new Type());
  t->kind_ = TypeKind::kInt;
  t->bit_width_ = bit_width;
  t->is_signed_ = is_signed;
  t->size_ = bit_width / 8;
  t->align_ = t->size_;
  std::string key = TypeKey(*t);
  return Intern(std::move(t), key);
}

const Type* TypeTable::PointerTo(const Type* pointee) {
  OPEC_CHECK(pointee != nullptr);
  auto t = std::unique_ptr<Type>(new Type());
  t->kind_ = TypeKind::kPointer;
  t->pointee_ = pointee;
  t->size_ = kPointerSize;
  t->align_ = kPointerSize;
  std::string key = TypeKey(*t);
  return Intern(std::move(t), key);
}

const Type* TypeTable::ArrayOf(const Type* element, uint32_t count) {
  OPEC_CHECK(element != nullptr && element->size() > 0);
  OPEC_CHECK_MSG(count > 0, "arrays must have a statically known, nonzero size");
  auto t = std::unique_ptr<Type>(new Type());
  t->kind_ = TypeKind::kArray;
  t->element_ = element;
  t->count_ = count;
  t->size_ = element->size() * count;
  t->align_ = element->alignment();
  std::string key = TypeKey(*t);
  return Intern(std::move(t), key);
}

const Type* TypeTable::StructTy(const std::string& name, const std::vector<StructField>& fields) {
  auto existing = structs_.find(name);
  if (existing != structs_.end()) {
    const Type* prior = existing->second;
    OPEC_CHECK_MSG(prior->fields().size() == fields.size(),
                   "struct redeclared with different fields: " + name);
    for (size_t i = 0; i < fields.size(); ++i) {
      OPEC_CHECK_MSG(prior->fields()[i].name == fields[i].name &&
                         prior->fields()[i].type == fields[i].type,
                     "struct redeclared with different fields: " + name);
    }
    return prior;
  }
  auto t = std::unique_ptr<Type>(new Type());
  t->kind_ = TypeKind::kStruct;
  t->struct_name_ = name;
  uint32_t offset = 0;
  uint32_t align = 1;
  for (const StructField& f : fields) {
    OPEC_CHECK(f.type != nullptr && f.type->size() > 0);
    StructField placed = f;
    offset = AlignUp(offset, f.type->alignment());
    placed.offset = offset;
    offset += f.type->size();
    align = std::max(align, f.type->alignment());
    t->fields_.push_back(placed);
  }
  t->size_ = AlignUp(offset, align);
  t->align_ = align;
  const Type* raw = t.get();
  owned_.push_back(std::move(t));
  structs_[name] = raw;
  interned_["struct " + name] = raw;
  return raw;
}

const Type* TypeTable::FindStruct(const std::string& name) const {
  auto it = structs_.find(name);
  return it == structs_.end() ? nullptr : it->second;
}

const Type* TypeTable::FunctionTy(const Type* ret, const std::vector<const Type*>& params,
                                  bool variadic) {
  auto t = std::unique_ptr<Type>(new Type());
  t->kind_ = TypeKind::kFunction;
  t->return_type_ = ret;
  t->params_ = params;
  t->variadic_ = variadic;
  std::string key = TypeKey(*t);
  return Intern(std::move(t), key);
}

}  // namespace opec_ir
