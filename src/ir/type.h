// Type system for the OPEC guest IR.
//
// The guest target is a 32-bit bare-metal machine (ARMv7-M-like): pointers are
// 4 bytes, integers are 1/2/4 bytes, structs use natural alignment. Types are
// interned in a TypeTable (owned by the ir::Module) so `const Type*` equality
// is type equality.

#ifndef SRC_IR_TYPE_H_
#define SRC_IR_TYPE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace opec_ir {

enum class TypeKind {
  kVoid,
  kInt,       // 8/16/32-bit, signed or unsigned
  kPointer,   // 4-byte pointer to pointee type
  kArray,     // fixed-size array (statically known, per the paper's assumption)
  kStruct,    // named struct with natural field alignment
  kFunction,  // function signature (only pointed to, never a value)
};

class Type;

// A single named member of a struct type. Offsets are computed by the
// TypeTable when the struct type is created.
struct StructField {
  std::string name;
  const Type* type = nullptr;
  uint32_t offset = 0;
};

class Type {
 public:
  TypeKind kind() const { return kind_; }

  // Size in bytes as laid out in guest memory. Void and function types have
  // size 0 (they are never stored).
  uint32_t size() const { return size_; }
  uint32_t alignment() const { return align_; }

  // kInt accessors.
  uint32_t bit_width() const { return bit_width_; }
  bool is_signed() const { return is_signed_; }

  // kPointer accessor: pointee type (may be a function type).
  const Type* pointee() const { return pointee_; }

  // kArray accessors.
  const Type* element() const { return element_; }
  uint32_t count() const { return count_; }

  // kStruct accessors.
  const std::string& struct_name() const { return struct_name_; }
  const std::vector<StructField>& fields() const { return fields_; }
  // Returns the field index for `name`, or -1 if absent.
  int FieldIndex(const std::string& name) const;

  // kFunction accessors.
  const Type* return_type() const { return return_type_; }
  const std::vector<const Type*>& params() const { return params_; }
  bool is_variadic() const { return variadic_; }

  bool IsVoid() const { return kind_ == TypeKind::kVoid; }
  bool IsInt() const { return kind_ == TypeKind::kInt; }
  bool IsPointer() const { return kind_ == TypeKind::kPointer; }
  bool IsArray() const { return kind_ == TypeKind::kArray; }
  bool IsStruct() const { return kind_ == TypeKind::kStruct; }
  bool IsFunction() const { return kind_ == TypeKind::kFunction; }

  // Human-readable spelling, e.g. "u32", "u8[16]", "struct Pkt*".
  std::string ToString() const;

 private:
  friend class TypeTable;
  Type() = default;

  TypeKind kind_ = TypeKind::kVoid;
  uint32_t size_ = 0;
  uint32_t align_ = 1;
  uint32_t bit_width_ = 0;
  bool is_signed_ = false;
  const Type* pointee_ = nullptr;
  const Type* element_ = nullptr;
  uint32_t count_ = 0;
  std::string struct_name_;
  std::vector<StructField> fields_;
  const Type* return_type_ = nullptr;
  std::vector<const Type*> params_;
  bool variadic_ = false;
};

// Interns types. Equal type descriptions return pointer-identical types,
// except structs, which are nominal (two structs with the same fields but
// different names are distinct).
class TypeTable {
 public:
  TypeTable();
  TypeTable(const TypeTable&) = delete;
  TypeTable& operator=(const TypeTable&) = delete;

  const Type* VoidTy() const { return void_; }
  const Type* I8() const { return i8_; }
  const Type* I16() const { return i16_; }
  const Type* I32() const { return i32_; }
  const Type* U8() const { return u8_; }
  const Type* U16() const { return u16_; }
  const Type* U32() const { return u32_; }

  const Type* IntTy(uint32_t bit_width, bool is_signed);
  const Type* PointerTo(const Type* pointee);
  const Type* ArrayOf(const Type* element, uint32_t count);
  // Creates (or returns the previously created) nominal struct type. Field
  // offsets are computed with natural alignment; total size is padded to the
  // struct alignment. Calling again with the same name requires identical
  // fields.
  const Type* StructTy(const std::string& name, const std::vector<StructField>& fields);
  // Looks up a previously declared struct, or nullptr.
  const Type* FindStruct(const std::string& name) const;
  const Type* FunctionTy(const Type* ret, const std::vector<const Type*>& params,
                         bool variadic = false);

  static constexpr uint32_t kPointerSize = 4;

 private:
  const Type* Intern(std::unique_ptr<Type> t, const std::string& key);

  std::vector<std::unique_ptr<Type>> owned_;
  std::map<std::string, const Type*> interned_;
  std::map<std::string, const Type*> structs_;
  const Type* void_ = nullptr;
  const Type* i8_ = nullptr;
  const Type* i16_ = nullptr;
  const Type* i32_ = nullptr;
  const Type* u8_ = nullptr;
  const Type* u16_ = nullptr;
  const Type* u32_ = nullptr;
};

}  // namespace opec_ir

#endif  // SRC_IR_TYPE_H_
