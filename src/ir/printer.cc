#include "src/ir/printer.h"

#include "src/support/check.h"
#include "src/support/text.h"

namespace opec_ir {

namespace {
std::string Ind(int n) { return std::string(static_cast<size_t>(n) * 2, ' '); }
}  // namespace

std::string PrintExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntConst:
      if (e.type->IsPointer()) {
        return e.int_value == 0 ? "null"
                                : opec_support::HexAddr(static_cast<uint32_t>(e.int_value));
      }
      return std::to_string(e.int_value);
    case ExprKind::kLocal:
      return opec_support::StrPrintf("%%%d", e.local_slot);
    case ExprKind::kGlobal:
      return "@" + e.global->name();
    case ExprKind::kFuncAddr:
      return "&" + e.func->name();
    case ExprKind::kUnary:
      return opec_support::StrPrintf("%s(%s)", UnaryOpName(e.unary_op),
                                     PrintExpr(*e.operands[0]).c_str());
    case ExprKind::kBinary:
      return opec_support::StrPrintf("(%s %s %s)", PrintExpr(*e.operands[0]).c_str(),
                                     BinaryOpName(e.binary_op), PrintExpr(*e.operands[1]).c_str());
    case ExprKind::kDeref:
      return "*(" + PrintExpr(*e.operands[0]) + ")";
    case ExprKind::kAddrOf:
      return "&(" + PrintExpr(*e.operands[0]) + ")";
    case ExprKind::kIndex:
      return PrintExpr(*e.operands[0]) + "[" + PrintExpr(*e.operands[1]) + "]";
    case ExprKind::kField:
      return PrintExpr(*e.operands[0]) + "." +
             e.operands[0]->type->fields()[static_cast<size_t>(e.field_index)].name;
    case ExprKind::kCall: {
      std::vector<std::string> args;
      for (const ExprPtr& a : e.operands) {
        args.push_back(PrintExpr(*a));
      }
      std::string svc = e.operation_entry_id >= 0
                            ? opec_support::StrPrintf("svc<%d> ", e.operation_entry_id)
                            : "";
      return svc + e.func->name() + "(" + opec_support::Join(args, ", ") + ")";
    }
    case ExprKind::kICall: {
      std::vector<std::string> args;
      for (size_t i = 1; i < e.operands.size(); ++i) {
        args.push_back(PrintExpr(*e.operands[i]));
      }
      return "(*" + PrintExpr(*e.operands[0]) + ")(" + opec_support::Join(args, ", ") + ")";
    }
    case ExprKind::kCast:
      return "(" + e.type->ToString() + ")(" + PrintExpr(*e.operands[0]) + ")";
  }
  OPEC_UNREACHABLE("bad ExprKind");
}

namespace {
std::string PrintBlock(const std::vector<StmtPtr>& body, int indent) {
  std::string out;
  for (const StmtPtr& s : body) {
    out += PrintStmt(*s, indent);
  }
  return out;
}
}  // namespace

std::string PrintStmt(const Stmt& s, int indent) {
  switch (s.kind) {
    case StmtKind::kAssign:
      return Ind(indent) + PrintExpr(*s.lhs) + " = " + PrintExpr(*s.expr) + ";\n";
    case StmtKind::kExpr:
      return Ind(indent) + PrintExpr(*s.expr) + ";\n";
    case StmtKind::kIf: {
      std::string out = Ind(indent) + "if (" + PrintExpr(*s.expr) + ") {\n";
      out += PrintBlock(s.body, indent + 1);
      if (!s.orelse.empty()) {
        out += Ind(indent) + "} else {\n" + PrintBlock(s.orelse, indent + 1);
      }
      return out + Ind(indent) + "}\n";
    }
    case StmtKind::kWhile:
      return Ind(indent) + "while (" + PrintExpr(*s.expr) + ") {\n" +
             PrintBlock(s.body, indent + 1) + Ind(indent) + "}\n";
    case StmtKind::kBreak:
      return Ind(indent) + "break;\n";
    case StmtKind::kContinue:
      return Ind(indent) + "continue;\n";
    case StmtKind::kReturn:
      return Ind(indent) + (s.expr ? "return " + PrintExpr(*s.expr) + ";\n" : "return;\n");
  }
  OPEC_UNREACHABLE("bad StmtKind");
}

std::string PrintFunction(const Function& fn) {
  std::vector<std::string> params;
  for (int i = 0; i < fn.param_count(); ++i) {
    const LocalVariable& p = fn.locals()[static_cast<size_t>(i)];
    params.push_back(p.type->ToString() + " " + p.name);
  }
  std::string out = fn.type()->return_type()->ToString() + " " + fn.name() + "(" +
                    opec_support::Join(params, ", ") + ") {\n";
  for (size_t i = static_cast<size_t>(fn.param_count()); i < fn.locals().size(); ++i) {
    out += "  local " + fn.locals()[i].type->ToString() + " " + fn.locals()[i].name +
           opec_support::StrPrintf("  ; %%%zu\n", i);
  }
  out += PrintBlock(fn.body(), 1);
  return out + "}\n";
}

std::string PrintModule(const Module& m) {
  std::string out = "; module " + m.name() + "\n";
  for (const auto& g : m.globals()) {
    out += (g->is_const() ? "const " : "") + g->type()->ToString() + " @" + g->name() + "\n";
  }
  for (const auto& fn : m.functions()) {
    out += "\n" + PrintFunction(*fn);
  }
  return out;
}

}  // namespace opec_ir
