#include "src/ir/stmt.h"

#include "src/support/check.h"

namespace opec_ir {

StmtPtr MakeAssign(ExprPtr lhs, ExprPtr value) {
  OPEC_CHECK_MSG(lhs->IsLvalue(), "Assign destination must be an lvalue");
  OPEC_CHECK(value != nullptr);
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kAssign;
  s->lhs = std::move(lhs);
  s->expr = std::move(value);
  return s;
}

StmtPtr MakeExprStmt(ExprPtr expr) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kExpr;
  s->expr = std::move(expr);
  return s;
}

StmtPtr MakeIf(ExprPtr cond, std::vector<StmtPtr> then_body, std::vector<StmtPtr> else_body) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kIf;
  s->expr = std::move(cond);
  s->body = std::move(then_body);
  s->orelse = std::move(else_body);
  return s;
}

StmtPtr MakeWhile(ExprPtr cond, std::vector<StmtPtr> body) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kWhile;
  s->expr = std::move(cond);
  s->body = std::move(body);
  return s;
}

StmtPtr MakeBreak() {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kBreak;
  return s;
}

StmtPtr MakeContinue() {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kContinue;
  return s;
}

StmtPtr MakeReturn(ExprPtr value) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kReturn;
  s->expr = std::move(value);
  return s;
}

}  // namespace opec_ir
