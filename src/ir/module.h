// Module-level IR containers: global variables, functions, the module itself.

#ifndef SRC_IR_MODULE_H_
#define SRC_IR_MODULE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/stmt.h"
#include "src/ir/type.h"

namespace opec_ir {

// A module-level variable living in guest SRAM (.data/.bss) or, when
// `is_const`, in guest Flash (.rodata). Initial bytes shorter than the type
// size are zero-extended (bss semantics).
class GlobalVariable {
 public:
  GlobalVariable(std::string name, const Type* type, bool is_const)
      : name_(std::move(name)), type_(type), is_const_(is_const) {}

  const std::string& name() const { return name_; }
  const Type* type() const { return type_; }
  bool is_const() const { return is_const_; }
  uint32_t size() const { return type_->size(); }

  // Dense position in Module::globals(), assigned by Module::AddGlobal. Lets
  // per-run consumers (the execution engine) index flat arrays instead of
  // pointer-keyed maps on the hot path.
  int ordinal() const { return ordinal_; }
  void set_ordinal(int o) { ordinal_ = o; }

  const std::vector<uint8_t>& initial_data() const { return initial_data_; }
  void set_initial_data(std::vector<uint8_t> bytes) { initial_data_ = std::move(bytes); }

 private:
  std::string name_;
  const Type* type_;
  bool is_const_;
  int ordinal_ = -1;
  std::vector<uint8_t> initial_data_;
};

// A local variable or parameter of a function. Parameters occupy the first
// `Function::param_count()` slots.
struct LocalVariable {
  std::string name;
  const Type* type = nullptr;
};

class Function {
 public:
  Function(std::string name, const Type* fn_type, std::vector<std::string> param_names)
      : name_(std::move(name)), type_(fn_type) {
    for (size_t i = 0; i < param_names.size(); ++i) {
      locals_.push_back({param_names[i], fn_type->params()[i]});
    }
    param_count_ = static_cast<int>(param_names.size());
  }

  const std::string& name() const { return name_; }
  const Type* type() const { return type_; }
  int param_count() const { return param_count_; }

  const std::vector<LocalVariable>& locals() const { return locals_; }
  // Adds a (non-parameter) local and returns its slot index.
  int AddLocal(const std::string& name, const Type* type) {
    locals_.push_back({name, type});
    return static_cast<int>(locals_.size()) - 1;
  }

  const std::vector<StmtPtr>& body() const { return body_; }
  void set_body(std::vector<StmtPtr> body) { body_ = std::move(body); }

  // Source file attribute, used by the ACES baseline's filename-based
  // partition strategies (the IR equivalent of the translation unit).
  const std::string& source_file() const { return source_file_; }
  void set_source_file(std::string f) { source_file_ = std::move(f); }

  // Interrupt handlers cannot be operation entries and always run privileged.
  bool is_interrupt_handler() const { return is_interrupt_handler_; }
  void set_is_interrupt_handler(bool v) { is_interrupt_handler_ = v; }

  // Dense position in Module::functions(), assigned by Module::AddFunction.
  int ordinal() const { return ordinal_; }
  void set_ordinal(int o) { ordinal_ = o; }

 private:
  std::string name_;
  const Type* type_;
  int param_count_ = 0;
  int ordinal_ = -1;
  std::vector<LocalVariable> locals_;
  std::vector<StmtPtr> body_;
  std::string source_file_;
  bool is_interrupt_handler_ = false;
};

// A guest program: the statically linked bare-metal image's IR, equivalent to
// the linked LLVM bitcode OPEC-Compiler consumes.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }
  TypeTable& types() { return types_; }
  const TypeTable& types() const { return types_; }

  GlobalVariable* AddGlobal(const std::string& name, const Type* type, bool is_const = false);
  Function* AddFunction(const std::string& name, const Type* fn_type,
                        std::vector<std::string> param_names);

  GlobalVariable* FindGlobal(const std::string& name) const;
  Function* FindFunction(const std::string& name) const;

  const std::vector<std::unique_ptr<GlobalVariable>>& globals() const { return globals_; }
  const std::vector<std::unique_ptr<Function>>& functions() const { return functions_; }

 private:
  std::string name_;
  TypeTable types_;
  std::vector<std::unique_ptr<GlobalVariable>> globals_;
  std::vector<std::unique_ptr<Function>> functions_;
  std::map<std::string, GlobalVariable*> global_index_;
  std::map<std::string, Function*> function_index_;
};

}  // namespace opec_ir

#endif  // SRC_IR_MODULE_H_
