// Expression nodes of the OPEC guest IR.
//
// The IR is an AST-level representation (the reproduction's stand-in for
// LLVM IR): expressions are immutable trees shared via shared_ptr. Memory is
// touched only by Load-context evaluation of lvalues and by Assign statements,
// which is what makes the def-use / points-to analyses in src/analysis and the
// MPU enforcement in src/rt well-defined.
//
// Lvalue expression kinds (designate a guest memory location):
//   kLocal, kGlobal, kDeref, kIndex, kField
// Everything else is rvalue-only.

#ifndef SRC_IR_EXPR_H_
#define SRC_IR_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/type.h"

namespace opec_ir {

class Function;
class GlobalVariable;

enum class ExprKind {
  kIntConst,  // integer literal (also used for constant MMIO addresses)
  kLocal,     // reference to a local variable / parameter slot
  kGlobal,    // reference to a module-level global variable
  kFuncAddr,  // address of a function (function-pointer constant)
  kUnary,     // neg / bitnot / lognot
  kBinary,    // arithmetic, bitwise, comparison, logical
  kDeref,     // *ptr — lvalue
  kAddrOf,    // &lvalue
  kIndex,     // base[index]; base is an array lvalue or a pointer — lvalue
  kField,     // base.field; base is a struct lvalue — lvalue
  kCall,      // direct call
  kICall,     // indirect call through a function pointer
  kCast,      // value reinterpretation / truncation / extension
};

enum class UnaryOp { kNeg, kBitNot, kLogNot };

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLogAnd,
  kLogOr,
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

// A single IR expression node. One struct covers all kinds (payload fields are
// meaningful only for the kinds documented next to them); this keeps the
// interpreter and the analyses as flat switches.
struct Expr {
  ExprKind kind;
  const Type* type = nullptr;  // result type (for lvalues: the value type at the location)

  int64_t int_value = 0;                     // kIntConst
  int local_slot = -1;                       // kLocal: index into Function::locals()
  const GlobalVariable* global = nullptr;    // kGlobal
  const Function* func = nullptr;            // kFuncAddr, kCall (callee)
  UnaryOp unary_op = UnaryOp::kNeg;          // kUnary
  BinaryOp binary_op = BinaryOp::kAdd;       // kBinary
  int field_index = -1;                      // kField
  const Type* signature = nullptr;           // kICall: callee function type
  std::vector<ExprPtr> operands;             // children (args for calls; ICall: [ptr, args...])

  // Set by OPEC-Compiler instrumentation on kCall/kICall expressions whose
  // callee is an operation entry: the interpreter raises the SVC-based
  // operation switch around such calls (the IR-level equivalent of the SVC
  // instructions the paper inserts before/after the call site).
  int operation_entry_id = -1;

  bool IsLvalue() const {
    return kind == ExprKind::kLocal || kind == ExprKind::kGlobal || kind == ExprKind::kDeref ||
           kind == ExprKind::kIndex || kind == ExprKind::kField;
  }
};

// --- Node factories (type checking happens in the verifier / builder) ---

ExprPtr MakeIntConst(const Type* type, int64_t value);
ExprPtr MakeLocal(const Type* type, int slot);
ExprPtr MakeGlobal(const GlobalVariable* gv);
ExprPtr MakeFuncAddr(const Type* ptr_type, const Function* fn);
ExprPtr MakeUnary(UnaryOp op, ExprPtr a);
ExprPtr MakeBinary(BinaryOp op, const Type* type, ExprPtr a, ExprPtr b);
ExprPtr MakeDeref(ExprPtr ptr);
ExprPtr MakeAddrOf(const Type* ptr_type, ExprPtr lvalue);
ExprPtr MakeIndex(ExprPtr base, ExprPtr index);
ExprPtr MakeField(ExprPtr base, int field_index);
ExprPtr MakeCall(const Function* fn, std::vector<ExprPtr> args);
ExprPtr MakeICall(const Type* signature, ExprPtr fn_ptr, std::vector<ExprPtr> args);
ExprPtr MakeCast(const Type* to, ExprPtr value);

const char* UnaryOpName(UnaryOp op);
const char* BinaryOpName(BinaryOp op);

}  // namespace opec_ir

#endif  // SRC_IR_EXPR_H_
