// FunctionBuilder: an embedded DSL for authoring guest IR.
//
// Guest applications (src/apps) are written against this builder the way the
// paper's applications are written in C against the STM32 HAL. Example:
//
//   opec_ir::Module m("demo");
//   auto* fn = m.AddFunction("count", m.types().FunctionTy(m.types().VoidTy(), {}), {});
//   opec_ir::FunctionBuilder b(m, fn);
//   Val i = b.Local("i", m.types().U32());
//   b.Assign(i, b.U32(0));
//   b.While(i < b.U32(10));
//     b.Assign(b.G("counter"), b.G("counter") + b.U32(1));
//     b.Assign(i, i + b.U32(1));
//   b.End();
//   b.Finish();
//
// Binary operators take the left operand's type as the result type; integer
// widths are converted implicitly on Assign and on call-argument passing
// (truncate / zero- or sign-extend), matching C's usual conversions closely
// enough for the guest programs we author.

#ifndef SRC_IR_BUILDER_H_
#define SRC_IR_BUILDER_H_

#include <string>
#include <vector>

#include "src/ir/module.h"

namespace opec_ir {

// A value handle: wraps an ExprPtr so guest code reads like C.
struct Val {
  ExprPtr expr;
  const Type* type() const { return expr->type; }
};

Val operator+(const Val& a, const Val& b);
Val operator-(const Val& a, const Val& b);
Val operator*(const Val& a, const Val& b);
Val operator/(const Val& a, const Val& b);
Val operator%(const Val& a, const Val& b);
Val operator&(const Val& a, const Val& b);
Val operator|(const Val& a, const Val& b);
Val operator^(const Val& a, const Val& b);
Val operator<<(const Val& a, const Val& b);
Val operator>>(const Val& a, const Val& b);
Val operator==(const Val& a, const Val& b);
Val operator!=(const Val& a, const Val& b);
Val operator<(const Val& a, const Val& b);
Val operator<=(const Val& a, const Val& b);
Val operator>(const Val& a, const Val& b);
Val operator>=(const Val& a, const Val& b);
Val operator&&(const Val& a, const Val& b);
Val operator||(const Val& a, const Val& b);
Val operator!(const Val& a);
Val operator-(const Val& a);
Val operator~(const Val& a);

class FunctionBuilder {
 public:
  // Begins building `fn`'s body. `fn` must belong to `module`.
  FunctionBuilder(Module& module, Function* fn);
  ~FunctionBuilder();

  FunctionBuilder(const FunctionBuilder&) = delete;
  FunctionBuilder& operator=(const FunctionBuilder&) = delete;

  Module& module() { return module_; }
  TypeTable& types() { return module_.types(); }

  // --- Values ---

  // Integer constants.
  Val C(const Type* type, int64_t v);
  Val U8(uint32_t v) { return C(types().U8(), v); }
  Val U16(uint32_t v) { return C(types().U16(), v); }
  Val U32(uint32_t v) { return C(types().U32(), v); }
  Val I32(int32_t v) { return C(types().I32(), v); }
  // Null pointer of the given pointer type.
  Val Null(const Type* ptr_type);

  // Reference to a parameter or previously declared local, by name.
  Val L(const std::string& name) const;
  // Declares a new local variable and returns a reference to it.
  Val Local(const std::string& name, const Type* type);
  // Reference to a module global, by name (must exist).
  Val G(const std::string& name) const;
  // Address of a function, as a function-pointer value.
  Val FnPtr(const std::string& fn_name);

  // --- Compound lvalues / memory ---
  Val Deref(const Val& ptr) const { return {MakeDeref(ptr.expr)}; }
  Val Addr(const Val& lvalue);
  Val Idx(const Val& base, const Val& index) const { return {MakeIndex(base.expr, index.expr)}; }
  Val Idx(const Val& base, uint32_t index);
  Val Fld(const Val& base, const std::string& field) const;
  Val CastTo(const Type* type, const Val& v) const { return {MakeCast(type, v.expr)}; }

  // Memory-mapped I/O register at a constant address, as a u32 lvalue. This is
  // the idiom the peripheral-access analysis recognizes (a constant address
  // flowing into a load/store, per Section 4.2 of the paper).
  Val Mmio32(uint32_t addr);

  // --- Calls ---
  Val CallV(const std::string& fn_name, std::vector<Val> args = {});
  void Call(const std::string& fn_name, std::vector<Val> args = {});
  Val ICallV(const Type* signature, const Val& fn_ptr, std::vector<Val> args = {});
  void ICall(const Type* signature, const Val& fn_ptr, std::vector<Val> args = {});

  // --- Statements ---
  void Assign(const Val& lvalue, const Val& value);
  void Do(const Val& expr);  // evaluate for effect

  void If(const Val& cond);
  void Else();
  void While(const Val& cond);
  void End();  // closes the innermost If/Else or While

  void Break();
  void Continue();
  void Ret(const Val& value);
  void RetVoid();

  // Finalizes the function body. Must be called exactly once, with all
  // control-flow scopes closed.
  void Finish();

 private:
  struct Scope;
  std::vector<StmtPtr>& CurrentBlock();
  void Emit(StmtPtr s);
  // Inserts an implicit integer conversion so `v` has type `want`.
  Val Coerce(const Type* want, const Val& v) const;
  std::vector<ExprPtr> CoerceArgs(const Type* signature, std::vector<Val>& args);

  Module& module_;
  Function* fn_;
  std::vector<Scope> scopes_;
  bool finished_ = false;
};

}  // namespace opec_ir

#endif  // SRC_IR_BUILDER_H_
