// Textual dump of guest IR, for debugging and for golden tests.

#ifndef SRC_IR_PRINTER_H_
#define SRC_IR_PRINTER_H_

#include <string>

#include "src/ir/module.h"

namespace opec_ir {

std::string PrintExpr(const Expr& e);
std::string PrintStmt(const Stmt& s, int indent = 0);
std::string PrintFunction(const Function& fn);
std::string PrintModule(const Module& m);

}  // namespace opec_ir

#endif  // SRC_IR_PRINTER_H_
