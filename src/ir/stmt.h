// Statement nodes of the OPEC guest IR.

#ifndef SRC_IR_STMT_H_
#define SRC_IR_STMT_H_

#include <memory>
#include <vector>

#include "src/ir/expr.h"

namespace opec_ir {

enum class StmtKind {
  kAssign,    // lvalue = value  (the only memory-writing statement)
  kExpr,      // expression evaluated for effect (typically a call)
  kIf,        // if (cond) then_body else else_body
  kWhile,     // while (cond) body
  kBreak,     // break out of the innermost loop
  kContinue,  // continue the innermost loop
  kReturn,    // return [value]
};

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

struct Stmt {
  StmtKind kind;
  ExprPtr lhs;                  // kAssign: destination lvalue
  ExprPtr expr;                 // kAssign: value; kExpr / kIf / kWhile: expr or cond; kReturn: value
  std::vector<StmtPtr> body;    // kIf: then; kWhile: loop body
  std::vector<StmtPtr> orelse;  // kIf: else
};

StmtPtr MakeAssign(ExprPtr lhs, ExprPtr value);
StmtPtr MakeExprStmt(ExprPtr expr);
StmtPtr MakeIf(ExprPtr cond, std::vector<StmtPtr> then_body, std::vector<StmtPtr> else_body);
StmtPtr MakeWhile(ExprPtr cond, std::vector<StmtPtr> body);
StmtPtr MakeBreak();
StmtPtr MakeContinue();
StmtPtr MakeReturn(ExprPtr value);  // value may be null for `return;`

}  // namespace opec_ir

#endif  // SRC_IR_STMT_H_
