#include "src/ir/module.h"

#include "src/support/check.h"

namespace opec_ir {

GlobalVariable* Module::AddGlobal(const std::string& name, const Type* type, bool is_const) {
  OPEC_CHECK_MSG(global_index_.find(name) == global_index_.end(), "duplicate global: " + name);
  OPEC_CHECK(type != nullptr && type->size() > 0);
  globals_.push_back(std::make_unique<GlobalVariable>(name, type, is_const));
  GlobalVariable* gv = globals_.back().get();
  gv->set_ordinal(static_cast<int>(globals_.size()) - 1);
  global_index_[name] = gv;
  return gv;
}

Function* Module::AddFunction(const std::string& name, const Type* fn_type,
                              std::vector<std::string> param_names) {
  OPEC_CHECK_MSG(function_index_.find(name) == function_index_.end(),
                 "duplicate function: " + name);
  OPEC_CHECK(fn_type->IsFunction());
  OPEC_CHECK(param_names.size() == fn_type->params().size());
  functions_.push_back(std::make_unique<Function>(name, fn_type, std::move(param_names)));
  Function* fn = functions_.back().get();
  fn->set_ordinal(static_cast<int>(functions_.size()) - 1);
  function_index_[name] = fn;
  return fn;
}

GlobalVariable* Module::FindGlobal(const std::string& name) const {
  auto it = global_index_.find(name);
  return it == global_index_.end() ? nullptr : it->second;
}

Function* Module::FindFunction(const std::string& name) const {
  auto it = function_index_.find(name);
  return it == function_index_.end() ? nullptr : it->second;
}

}  // namespace opec_ir
