#include "src/ir/expr.h"

#include "src/ir/module.h"
#include "src/support/check.h"

namespace opec_ir {

namespace {
std::shared_ptr<Expr> NewExpr(ExprKind kind, const Type* type) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->type = type;
  return e;
}
}  // namespace

ExprPtr MakeIntConst(const Type* type, int64_t value) {
  OPEC_CHECK(type->IsInt() || type->IsPointer());
  auto e = NewExpr(ExprKind::kIntConst, type);
  e->int_value = value;
  return e;
}

ExprPtr MakeLocal(const Type* type, int slot) {
  OPEC_CHECK(slot >= 0);
  auto e = NewExpr(ExprKind::kLocal, type);
  e->local_slot = slot;
  return e;
}

ExprPtr MakeGlobal(const GlobalVariable* gv) {
  OPEC_CHECK(gv != nullptr);
  auto e = NewExpr(ExprKind::kGlobal, gv->type());
  e->global = gv;
  return e;
}

ExprPtr MakeFuncAddr(const Type* ptr_type, const Function* fn) {
  OPEC_CHECK(ptr_type->IsPointer() && ptr_type->pointee()->IsFunction());
  auto e = NewExpr(ExprKind::kFuncAddr, ptr_type);
  e->func = fn;
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr a) {
  OPEC_CHECK(a != nullptr && a->type->IsInt());
  auto e = NewExpr(ExprKind::kUnary, a->type);
  e->unary_op = op;
  e->operands.push_back(std::move(a));
  return e;
}

ExprPtr MakeBinary(BinaryOp op, const Type* type, ExprPtr a, ExprPtr b) {
  OPEC_CHECK(a != nullptr && b != nullptr);
  auto e = NewExpr(ExprKind::kBinary, type);
  e->binary_op = op;
  e->operands.push_back(std::move(a));
  e->operands.push_back(std::move(b));
  return e;
}

ExprPtr MakeDeref(ExprPtr ptr) {
  OPEC_CHECK_MSG(ptr->type->IsPointer(), "Deref of non-pointer");
  const Type* pointee = ptr->type->pointee();
  OPEC_CHECK_MSG(!pointee->IsFunction(), "cannot Deref a function pointer; use ICall");
  auto e = NewExpr(ExprKind::kDeref, pointee);
  e->operands.push_back(std::move(ptr));
  return e;
}

ExprPtr MakeAddrOf(const Type* ptr_type, ExprPtr lvalue) {
  OPEC_CHECK_MSG(lvalue->IsLvalue(), "AddrOf of non-lvalue");
  OPEC_CHECK(ptr_type->IsPointer());
  auto e = NewExpr(ExprKind::kAddrOf, ptr_type);
  e->operands.push_back(std::move(lvalue));
  return e;
}

ExprPtr MakeIndex(ExprPtr base, ExprPtr index) {
  const Type* elem = nullptr;
  if (base->type->IsArray()) {
    OPEC_CHECK_MSG(base->IsLvalue(), "array Index base must be an lvalue");
    elem = base->type->element();
  } else if (base->type->IsPointer()) {
    elem = base->type->pointee();
  } else {
    OPEC_UNREACHABLE("Index base must be an array or a pointer");
  }
  auto e = NewExpr(ExprKind::kIndex, elem);
  e->operands.push_back(std::move(base));
  e->operands.push_back(std::move(index));
  return e;
}

ExprPtr MakeField(ExprPtr base, int field_index) {
  OPEC_CHECK_MSG(base->type->IsStruct(), "Field base must be a struct lvalue");
  OPEC_CHECK_MSG(base->IsLvalue(), "Field base must be an lvalue");
  OPEC_CHECK(field_index >= 0 &&
             static_cast<size_t>(field_index) < base->type->fields().size());
  const Type* ft = base->type->fields()[static_cast<size_t>(field_index)].type;
  auto e = NewExpr(ExprKind::kField, ft);
  e->field_index = field_index;
  e->operands.push_back(std::move(base));
  return e;
}

ExprPtr MakeCall(const Function* fn, std::vector<ExprPtr> args) {
  OPEC_CHECK(fn != nullptr);
  auto e = NewExpr(ExprKind::kCall, fn->type()->return_type());
  e->func = fn;
  e->operands = std::move(args);
  return e;
}

ExprPtr MakeICall(const Type* signature, ExprPtr fn_ptr, std::vector<ExprPtr> args) {
  OPEC_CHECK(signature->IsFunction());
  OPEC_CHECK(fn_ptr->type->IsPointer() && fn_ptr->type->pointee()->IsFunction());
  auto e = NewExpr(ExprKind::kICall, signature->return_type());
  e->signature = signature;
  e->operands.push_back(std::move(fn_ptr));
  for (ExprPtr& a : args) {
    e->operands.push_back(std::move(a));
  }
  return e;
}

ExprPtr MakeCast(const Type* to, ExprPtr value) {
  OPEC_CHECK(to->IsInt() || to->IsPointer());
  auto e = NewExpr(ExprKind::kCast, to);
  e->operands.push_back(std::move(value));
  return e;
}

const char* UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg:
      return "-";
    case UnaryOp::kBitNot:
      return "~";
    case UnaryOp::kLogNot:
      return "!";
  }
  return "?";
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kRem:
      return "%";
    case BinaryOp::kAnd:
      return "&";
    case BinaryOp::kOr:
      return "|";
    case BinaryOp::kXor:
      return "^";
    case BinaryOp::kShl:
      return "<<";
    case BinaryOp::kShr:
      return ">>";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kLogAnd:
      return "&&";
    case BinaryOp::kLogOr:
      return "||";
  }
  return "?";
}

}  // namespace opec_ir
