// Fault forensics: a structured capture of everything known at the moment an
// access was denied — which operation and function were running, what was
// accessed, and which MPU region / bus rule made the deny decision — rendered
// as a human-readable explanation instead of a bare fault code.
//
// The obs layer sits below the hardware model, so the hardware-specific
// judgement strings (deny_reason, mpu_regions) are filled in by the engine
// from Mpu::ExplainAccess / Bus::ExplainFault at capture time.

#ifndef SRC_OBS_FORENSICS_H_
#define SRC_OBS_FORENSICS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace opec_obs {

struct FaultReport {
  bool bus_fault = false;  // BusFault when true, MemManage (MPU) fault otherwise
  bool write = false;      // access kind
  bool attack = false;     // the denied access was an injected AttackSpec write
  uint32_t addr = 0;
  uint32_t size = 0;
  bool privileged = false;  // privilege level of the denied access

  int operation_id = -1;       // active operation (-1 = default / vanilla)
  std::string operation_name;  // optional; callers with a Policy can fill it
  std::string function;        // function executing when the fault hit
  int depth = 0;               // call depth at the fault
  uint64_t cycle = 0;          // modeled cycle at the fault

  // Which MPU region / bus rule decided (Mpu::ExplainAccess, Bus::ExplainFault).
  std::string deny_reason;
  // MPU region dump ("region N: ...") at fault time, for post-mortem review.
  std::vector<std::string> mpu_regions;

  // Crash-state snapshot handle: the full serialized machine state (hw
  // state_io wire format — decode with opec_hw::Machine::LoadState or wrap in
  // an opec_snapshot::Snapshot) captured at the instant of the fault. Null
  // unless the engine's fault-state capture was enabled (campaign
  // --snapshot-dir does this). Opaque bytes here: the obs layer sits below
  // the hardware model and must not depend on it. Shared, because reports
  // are copied around by value and the blob can be megabytes.
  std::shared_ptr<const std::vector<uint8_t>> machine_state;
  uint64_t machine_state_digest = 0;  // FNV-1a 64 of *machine_state

  // One-line digest, used as the run's violation string. Starts with
  // "MemManage fault" or "BusFault" like the pre-forensics diagnostics.
  std::string Summary() const;
  // Multi-line human-readable report.
  std::string Render() const;
};

}  // namespace opec_obs

#endif  // SRC_OBS_FORENSICS_H_
