// Fault forensics: a structured capture of everything known at the moment an
// access was denied — which operation and function were running, what was
// accessed, and which MPU region / bus rule made the deny decision — rendered
// as a human-readable explanation instead of a bare fault code.
//
// The obs layer sits below the hardware model, so the hardware-specific
// judgement strings (deny_reason, mpu_regions) are filled in by the engine
// from Mpu::ExplainAccess / Bus::ExplainFault at capture time.

#ifndef SRC_OBS_FORENSICS_H_
#define SRC_OBS_FORENSICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace opec_obs {

struct FaultReport {
  bool bus_fault = false;  // BusFault when true, MemManage (MPU) fault otherwise
  bool write = false;      // access kind
  bool attack = false;     // the denied access was an injected AttackSpec write
  uint32_t addr = 0;
  uint32_t size = 0;
  bool privileged = false;  // privilege level of the denied access

  int operation_id = -1;       // active operation (-1 = default / vanilla)
  std::string operation_name;  // optional; callers with a Policy can fill it
  std::string function;        // function executing when the fault hit
  int depth = 0;               // call depth at the fault
  uint64_t cycle = 0;          // modeled cycle at the fault

  // Which MPU region / bus rule decided (Mpu::ExplainAccess, Bus::ExplainFault).
  std::string deny_reason;
  // MPU region dump ("region N: ...") at fault time, for post-mortem review.
  std::vector<std::string> mpu_regions;

  // One-line digest, used as the run's violation string. Starts with
  // "MemManage fault" or "BusFault" like the pre-forensics diagnostics.
  std::string Summary() const;
  // Multi-line human-readable report.
  std::string Render() const;
};

}  // namespace opec_obs

#endif  // SRC_OBS_FORENSICS_H_
