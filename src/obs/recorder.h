// Recorder: a fixed-capacity ring-buffer sink. When the buffer is full the
// oldest events are overwritten; `dropped()` reports how many were lost so
// exporters can flag truncated traces.

#ifndef SRC_OBS_RECORDER_H_
#define SRC_OBS_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/obs/event.h"

namespace opec_obs {

class Recorder : public Sink {
 public:
  static constexpr size_t kDefaultCapacity = 1u << 16;

  explicit Recorder(size_t capacity = kDefaultCapacity);

  void OnEvent(const Event& event) override;

  size_t capacity() const { return buffer_.size(); }
  // Events currently held (min(total, capacity)).
  size_t size() const;
  // Events ever observed / overwritten by wraparound.
  uint64_t total() const { return total_; }
  uint64_t dropped() const { return total_ > buffer_.size() ? total_ - buffer_.size() : 0; }

  // i-th retained event in chronological order (0 = oldest retained).
  const Event& at(size_t i) const;
  // All retained events, oldest first.
  std::vector<Event> Snapshot() const;

  void Clear();

 private:
  std::vector<Event> buffer_;
  uint64_t total_ = 0;
};

}  // namespace opec_obs

#endif  // SRC_OBS_RECORDER_H_
