#include "src/obs/profile.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/support/table.h"
#include "src/support/text.h"

// (profile renders through opec_support::Table, the same renderer behind the
// opec_metrics bench tables, so the per-operation report matches their look.)

namespace opec_obs {

namespace {

struct Accum {
  OperationProfile p;
  std::set<uint32_t> devices;      // MMIO addr >> 10 (register-bank granularity)
  std::set<uint32_t> synced_vars;  // external var indices
};

}  // namespace

std::vector<OperationProfile> AggregateProfiles(const std::vector<Event>& events) {
  std::map<int, Accum> by_op;
  auto acc = [&](int op) -> Accum& {
    Accum& a = by_op[op];
    a.p.op_id = op;
    return a;
  };

  int cur = -1;
  uint64_t last_cycle = events.empty() ? 0 : events.front().cycle;
  for (const Event& e : events) {
    // Charge the gap since the previous event to the operation that was
    // active across it; switch work emitted inside OnOperationEnter therefore
    // bills the switching (previous) operation, matching how the paper
    // attributes switch overhead to the switch site.
    acc(cur).p.cycles += e.cycle - last_cycle;
    last_cycle = e.cycle;

    int owner = e.operation_id == Event::kNoOperation ? cur : e.operation_id;
    Accum& a = acc(owner);
    switch (e.kind) {
      case EventKind::kFunctionEnter:
        ++a.p.function_enters;
        break;
      case EventKind::kFunctionExit:
        break;
      case EventKind::kOperationEnter:
        ++acc(static_cast<int>(e.arg0)).p.enters;
        cur = static_cast<int>(e.arg0);
        break;
      case EventKind::kOperationExit:
        ++acc(static_cast<int>(e.arg0)).p.exits;
        cur = static_cast<int>(e.arg1);
        break;
      case EventKind::kSvc:
        ++a.p.svcs;
        break;
      case EventKind::kMpuReconfig:
        ++a.p.mpu_reconfigs;
        break;
      case EventKind::kMemFault:
        ++a.p.mem_faults;
        break;
      case EventKind::kBusFault:
        ++a.p.bus_faults;
        break;
      case EventKind::kMmioAccess:
        ++a.p.mmio_accesses;
        a.devices.insert(e.arg0 >> 10);
        break;
      case EventKind::kShadowSync:
        ++a.p.shadow_syncs;
        a.p.synced_bytes += e.arg1;
        a.synced_vars.insert(e.arg0);
        break;
    }
  }

  std::vector<OperationProfile> out;
  out.reserve(by_op.size());
  for (auto& [op, a] : by_op) {
    a.p.distinct_devices = a.devices.size();
    a.p.distinct_synced_vars = a.synced_vars.size();
    out.push_back(a.p);
  }
  return out;  // std::map iteration gives ascending op id, -1 first
}

std::string RenderProfileTable(const std::vector<OperationProfile>& profiles,
                               const Naming& naming) {
  opec_support::Table table({"Operation", "Cycles", "Fn enters", "Enters", "Exits", "SVCs",
                             "Sync bytes", "MemFlt", "BusFlt", "MPU wr", "MMIO", "Devices",
                             "Vars"});
  auto u = [](uint64_t v) {
    return opec_support::StrPrintf("%llu", static_cast<unsigned long long>(v));
  };
  for (const OperationProfile& p : profiles) {
    std::string name = p.op_id < 0
                           ? naming.Operation(p.op_id)
                           : opec_support::StrPrintf("%d:", p.op_id) + naming.Operation(p.op_id);
    table.AddRow({name, u(p.cycles), u(p.function_enters), u(p.enters), u(p.exits), u(p.svcs),
                  u(p.synced_bytes), u(p.mem_faults), u(p.bus_faults), u(p.mpu_reconfigs),
                  u(p.mmio_accesses), u(p.distinct_devices), u(p.distinct_synced_vars)});
  }
  return table.ToString();
}

}  // namespace opec_obs
