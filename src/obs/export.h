// Event-stream exporters: Chrome trace-event JSON (loadable in Perfetto /
// chrome://tracing; operations render as tracks, functions as nested slices,
// faults and monitor work as instants) and a JSONL stream for scripting.

#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/event.h"

namespace opec_obs {

// Ordinal/id -> human name resolution for exporters and reports. The obs
// layer sits below the IR and compiler, so callers (AppRun, benches) fill
// this in from the module and policy.
struct Naming {
  std::vector<std::string> functions;   // indexed by function ordinal
  std::vector<std::string> operations;  // indexed by operation id

  std::string Function(uint32_t ordinal) const;
  std::string Operation(int id) const;  // -1 -> "default"
};

// One process track in a combined trace (pid = index in the vector).
struct TraceProcess {
  std::string name;
  std::vector<Event> events;
  Naming naming;
  // Events the producing Recorder discarded at capacity (Recorder::dropped()).
  // Surfaced in the export metadata so a truncated trace is never mistaken
  // for a complete one.
  uint64_t dropped = 0;
};

// Chrome trace-event format: {"traceEvents": [...], ...}. Timestamps are the
// modeled cycle count, exported in the format's microsecond unit (1 cycle ==
// 1 us on screen; only relative durations matter). otherData carries
// "dropped_events": the sum of every process's dropped count.
std::string ChromeTraceJson(const std::vector<TraceProcess>& processes);
std::string ChromeTraceJson(const std::vector<Event>& events, const Naming& naming,
                            const std::string& process_name = "opec",
                            uint64_t dropped = 0);

// One JSON object per line, fields decoded per event kind. A nonzero
// `dropped` prepends a {"header": ...} line recording the loss.
std::string JsonLines(const std::vector<Event>& events, const Naming& naming,
                      uint64_t dropped = 0);

// Writes `content` to `path`; false on I/O failure.
bool WriteFile(const std::string& path, const std::string& content);

}  // namespace opec_obs

#endif  // SRC_OBS_EXPORT_H_
