#include "src/obs/event.h"
#include "src/obs/recorder.h"
#include "src/support/check.h"

namespace opec_obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kFunctionEnter:
      return "function_enter";
    case EventKind::kFunctionExit:
      return "function_exit";
    case EventKind::kOperationEnter:
      return "operation_enter";
    case EventKind::kOperationExit:
      return "operation_exit";
    case EventKind::kSvc:
      return "svc";
    case EventKind::kMpuReconfig:
      return "mpu_reconfig";
    case EventKind::kMemFault:
      return "mem_fault";
    case EventKind::kBusFault:
      return "bus_fault";
    case EventKind::kMmioAccess:
      return "mmio_access";
    case EventKind::kShadowSync:
      return "shadow_sync";
  }
  return "?";
}

void Hub::Attach(Sink* sink) {
  OPEC_CHECK(sink != nullptr);
  for (int i = 0; i < sink_count_; ++i) {
    if (sinks_[i] == sink) {
      return;  // already attached
    }
  }
  OPEC_CHECK_MSG(sink_count_ < kMaxSinks, "too many observability sinks attached");
  sinks_[sink_count_++] = sink;
}

void Hub::Detach(Sink* sink) {
  for (int i = 0; i < sink_count_; ++i) {
    if (sinks_[i] == sink) {
      for (int j = i; j + 1 < sink_count_; ++j) {
        sinks_[j] = sinks_[j + 1];
      }
      sinks_[--sink_count_] = nullptr;
      return;
    }
  }
}

Recorder::Recorder(size_t capacity) : buffer_(capacity == 0 ? 1 : capacity) {}

void Recorder::OnEvent(const Event& event) {
  buffer_[static_cast<size_t>(total_ % buffer_.size())] = event;
  ++total_;
}

size_t Recorder::size() const {
  return total_ < buffer_.size() ? static_cast<size_t>(total_) : buffer_.size();
}

const Event& Recorder::at(size_t i) const {
  OPEC_CHECK(i < size());
  size_t start = total_ > buffer_.size() ? static_cast<size_t>(total_ % buffer_.size()) : 0;
  return buffer_[(start + i) % buffer_.size()];
}

std::vector<Event> Recorder::Snapshot() const {
  std::vector<Event> out;
  out.reserve(size());
  for (size_t i = 0; i < size(); ++i) {
    out.push_back(at(i));
  }
  return out;
}

void Recorder::Clear() { total_ = 0; }

}  // namespace opec_obs
