// Structured runtime observability: typed events emitted by the engine, bus,
// MPU and monitor, dispatched to attached sinks through a process-global hub.
//
// Contract (DESIGN.md Section 9):
//   * Zero modeled-cycle impact: emitting an event never charges machine
//     cycles; the event stream is a pure observation of the run.
//   * Near-zero wall-clock impact when disabled: OPEC_OBS_EVENT compiles to a
//     single predictable-branch check of one thread-local counter when no
//     sink is attached; the event payload (including cycle-stamp reads) is
//     only evaluated when a sink is listening.
//   * Thread-local dispatch: the sink table is per-thread, so concurrent
//     campaign jobs (one Machine/AppRun per worker thread) each observe only
//     their own run — a sink attached on one thread never sees another
//     thread's events, with no locking on the emission path.

#ifndef SRC_OBS_EVENT_H_
#define SRC_OBS_EVENT_H_

#include <cstdint>

namespace opec_obs {

enum class EventKind : uint8_t {
  kFunctionEnter,    // arg0 = function ordinal
  kFunctionExit,     // arg0 = function ordinal
  kOperationEnter,   // arg0 = entered op id, arg1 = previous op id (as int)
  kOperationExit,    // arg0 = exited op id, arg1 = op id returned to (as int)
  kSvc,              // arg0 = op id, arg1 = 0 enter-side / 1 exit-side
  kMpuReconfig,      // arg0 = region index, arg1 = base, arg2 = packed config
  kMemFault,         // arg0 = addr, arg1 = size, arg2 = fault flags
  kBusFault,         // arg0 = addr, arg1 = size, arg2 = fault flags
  kMmioAccess,       // arg0 = addr, arg1 = size | (write << 8), arg2 = value
  kShadowSync,       // arg0 = external var index, arg1 = bytes, arg2 = dir
};

const char* EventKindName(EventKind kind);

// arg2 flag bits of kMemFault / kBusFault events.
inline constexpr uint32_t kFaultWrite = 1u << 0;     // else read
inline constexpr uint32_t kFaultResolved = 1u << 1;  // monitor handled it
inline constexpr uint32_t kFaultAttack = 1u << 2;    // injected AttackSpec write

// arg2 of kShadowSync events.
inline constexpr uint32_t kSyncCopyIn = 0;    // public -> shadow
inline constexpr uint32_t kSyncWriteBack = 1;  // shadow -> public

// Packed MPU config for kMpuReconfig's arg2:
// (srd << 16) | (size_log2 << 8) | (ap << 1) | enabled.
inline constexpr uint32_t PackMpuConfig(bool enabled, uint8_t size_log2, uint8_t srd,
                                        uint8_t ap) {
  return (static_cast<uint32_t>(srd) << 16) | (static_cast<uint32_t>(size_log2) << 8) |
         (static_cast<uint32_t>(ap) << 1) | (enabled ? 1u : 0u);
}

struct Event {
  // operation_id for events emitted by layers that do not track the active
  // operation (bus, MPU). Consumers attribute these to the stream-current
  // operation instead.
  static constexpr int32_t kNoOperation = INT32_MIN;

  EventKind kind = EventKind::kFunctionEnter;
  int32_t operation_id = -1;  // -1 = default operation / vanilla
  int32_t depth = 0;          // call depth for engine events, 0 otherwise
  uint64_t cycle = 0;         // modeled machine cycle at emission
  uint32_t arg0 = 0;          // kind-specific payload (see EventKind)
  uint32_t arg1 = 0;
  uint32_t arg2 = 0;

  static Event Make(EventKind kind, uint64_t cycle, int32_t operation_id = -1,
                    int32_t depth = 0, uint32_t arg0 = 0, uint32_t arg1 = 0,
                    uint32_t arg2 = 0) {
    Event e;
    e.kind = kind;
    e.operation_id = operation_id;
    e.depth = depth;
    e.cycle = cycle;
    e.arg0 = arg0;
    e.arg1 = arg1;
    e.arg2 = arg2;
    return e;
  }
};

// An event consumer. Sinks are not owned by the hub; attach/detach is the
// caller's job (use ScopedSink).
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void OnEvent(const Event& event) = 0;
};

// Per-thread dispatch point. A fixed, small sink table keeps the
// attached-path dispatch a plain indexed loop and the detached-path check a
// single (thread-local) load-and-branch.
class Hub {
 public:
  static constexpr int kMaxSinks = 6;

  static bool active() { return sink_count_ != 0; }
  static int sink_count() { return sink_count_; }

  // Attach/Detach are idempotent per sink pointer; attaching more than
  // kMaxSinks sinks is a host programming error.
  static void Attach(Sink* sink);
  static void Detach(Sink* sink);

  static void Dispatch(const Event& event) {
    for (int i = 0; i < sink_count_; ++i) {
      sinks_[i]->OnEvent(event);
    }
  }

 private:
  static inline thread_local Sink* sinks_[kMaxSinks] = {};
  static inline thread_local int sink_count_ = 0;
};

// RAII attach; tolerates a null sink (no-op) so call sites can attach
// conditionally without branching.
class ScopedSink {
 public:
  explicit ScopedSink(Sink* sink) : sink_(sink) {
    if (sink_ != nullptr) {
      Hub::Attach(sink_);
    }
  }
  ~ScopedSink() {
    if (sink_ != nullptr) {
      Hub::Detach(sink_);
    }
  }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  Sink* sink_;
};

}  // namespace opec_obs

// The one emission point. Arguments are only evaluated when a sink is
// attached; with none attached this is a single well-predicted branch.
#define OPEC_OBS_EVENT(...)                                                  \
  do {                                                                       \
    if (::opec_obs::Hub::active()) [[unlikely]] {                            \
      ::opec_obs::Hub::Dispatch(::opec_obs::Event::Make(__VA_ARGS__));       \
    }                                                                        \
  } while (0)

#endif  // SRC_OBS_EVENT_H_
