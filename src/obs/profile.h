// Per-operation profiler: aggregates a recorded event stream into one row per
// operation — attributed cycles, switch/SVC counts, shadow-sync traffic,
// fault activity and the distinct devices / shared globals touched — and
// renders it as a metrics table (the instrument behind Figure 9 / Table 2
// style per-domain accounting).

#ifndef SRC_OBS_PROFILE_H_
#define SRC_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/event.h"
#include "src/obs/export.h"

namespace opec_obs {

struct OperationProfile {
  int op_id = -1;
  // Modeled cycles attributed to this operation: the gap between consecutive
  // events is charged to the operation active when the gap started, so the
  // resolution is bounded by event density (function entries dominate).
  uint64_t cycles = 0;
  uint64_t function_enters = 0;
  uint64_t enters = 0;  // operation-enter switches into this operation
  uint64_t exits = 0;   // operation-exit switches out of it
  uint64_t svcs = 0;
  uint64_t synced_bytes = 0;
  uint64_t shadow_syncs = 0;
  uint64_t mem_faults = 0;
  uint64_t bus_faults = 0;
  uint64_t mpu_reconfigs = 0;
  uint64_t mmio_accesses = 0;
  uint64_t distinct_devices = 0;      // distinct MMIO register banks (1 KiB granularity)
  uint64_t distinct_synced_vars = 0;  // distinct external variables synced
};

// One profile per operation seen in the stream, sorted by op id (the default
// operation, id -1, first when present).
std::vector<OperationProfile> AggregateProfiles(const std::vector<Event>& events);

std::string RenderProfileTable(const std::vector<OperationProfile>& profiles,
                               const Naming& naming);

}  // namespace opec_obs

#endif  // SRC_OBS_PROFILE_H_
