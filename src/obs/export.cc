#include "src/obs/export.h"

#include <fstream>
#include <set>
#include <sstream>

#include "src/support/text.h"

namespace opec_obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += opec_support::StrPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Operations render as threads; tid 1 is the default operation (-1), real
// operation ids map to id + 2.
int TidOf(int op_id) { return op_id + 2; }

// Emits one trace-event object. `extra` is a pre-rendered tail (e.g.
// ",\"args\":{...}" or ",\"s\":\"t\"") appended inside the object.
void EmitEvent(std::ostringstream& out, bool& first, const char* ph, int pid, int tid,
               uint64_t ts, const std::string& name, const std::string& extra) {
  if (!first) {
    out << ",\n";
  }
  first = false;
  out << "    {\"ph\":\"" << ph << "\",\"pid\":" << pid << ",\"tid\":" << tid
      << ",\"ts\":" << ts << ",\"name\":\"" << JsonEscape(name) << "\"" << extra << "}";
}

void EmitProcess(std::ostringstream& out, bool& first, int pid, const TraceProcess& proc) {
  const Naming& naming = proc.naming;
  EmitEvent(out, first, "M", pid, 0, 0, "process_name",
            ",\"args\":{\"name\":\"" + JsonEscape(proc.name) + "\"}");

  // Track the stream-current operation so hw-level events (which carry
  // Event::kNoOperation) land on the track of the operation that was active.
  int cur_op = -1;
  std::set<int> seen_ops = {-1};
  for (const Event& e : proc.events) {
    int own_op = e.operation_id == Event::kNoOperation ? cur_op : e.operation_id;
    seen_ops.insert(own_op);
    int tid = TidOf(own_op);
    switch (e.kind) {
      case EventKind::kFunctionEnter:
        EmitEvent(out, first, "B", pid, tid, e.cycle, naming.Function(e.arg0), "");
        break;
      case EventKind::kFunctionExit:
        EmitEvent(out, first, "E", pid, tid, e.cycle, naming.Function(e.arg0), "");
        break;
      case EventKind::kOperationEnter:
        seen_ops.insert(static_cast<int>(e.arg0));
        EmitEvent(out, first, "B", pid, TidOf(static_cast<int>(e.arg0)), e.cycle,
                  "op:" + naming.Operation(static_cast<int>(e.arg0)), "");
        cur_op = static_cast<int>(e.arg0);
        break;
      case EventKind::kOperationExit:
        EmitEvent(out, first, "E", pid, TidOf(static_cast<int>(e.arg0)), e.cycle,
                  "op:" + naming.Operation(static_cast<int>(e.arg0)), "");
        cur_op = static_cast<int>(e.arg1);
        break;
      case EventKind::kSvc:
        EmitEvent(out, first, "i", pid, tid, e.cycle, e.arg1 == 0 ? "SVC enter" : "SVC exit",
                  ",\"s\":\"t\"");
        break;
      case EventKind::kMpuReconfig:
        EmitEvent(out, first, "i", pid, tid, e.cycle,
                  opec_support::StrPrintf("MPU region %u", e.arg0),
                  opec_support::StrPrintf(",\"s\":\"t\",\"args\":{\"base\":\"%s\","
                                          "\"packed\":%u}",
                                          opec_support::HexAddr(e.arg1).c_str(), e.arg2));
        break;
      case EventKind::kMemFault:
      case EventKind::kBusFault: {
        const char* label = e.kind == EventKind::kMemFault ? "MemFault" : "BusFault";
        EmitEvent(out, first, "i", pid, tid, e.cycle,
                  opec_support::StrPrintf("%s %s", label,
                                          opec_support::HexAddr(e.arg0).c_str()),
                  opec_support::StrPrintf(
                      ",\"s\":\"t\",\"args\":{\"size\":%u,\"write\":%s,\"resolved\":%s,"
                      "\"attack\":%s}",
                      e.arg1, (e.arg2 & kFaultWrite) != 0 ? "true" : "false",
                      (e.arg2 & kFaultResolved) != 0 ? "true" : "false",
                      (e.arg2 & kFaultAttack) != 0 ? "true" : "false"));
        break;
      }
      case EventKind::kMmioAccess:
        EmitEvent(out, first, "i", pid, tid, e.cycle,
                  "MMIO " + opec_support::HexAddr(e.arg0),
                  opec_support::StrPrintf(
                      ",\"s\":\"t\",\"args\":{\"size\":%u,\"write\":%s,\"value\":%u}",
                      e.arg1 & 0xFF, (e.arg1 & 0x100) != 0 ? "true" : "false", e.arg2));
        break;
      case EventKind::kShadowSync:
        EmitEvent(out, first, "i", pid, tid, e.cycle,
                  opec_support::StrPrintf("sync var#%u", e.arg0),
                  opec_support::StrPrintf(
                      ",\"s\":\"t\",\"args\":{\"bytes\":%u,\"direction\":\"%s\"}", e.arg1,
                      e.arg2 == kSyncWriteBack ? "write_back" : "copy_in"));
        break;
    }
  }
  for (int op : seen_ops) {
    EmitEvent(out, first, "M", pid, TidOf(op), 0, "thread_name",
              ",\"args\":{\"name\":\"operation " + JsonEscape(naming.Operation(op)) + "\"}");
    EmitEvent(out, first, "M", pid, TidOf(op), 0, "thread_sort_index",
              opec_support::StrPrintf(",\"args\":{\"sort_index\":%d}", TidOf(op)));
  }
}

}  // namespace

std::string Naming::Function(uint32_t ordinal) const {
  if (ordinal < functions.size() && !functions[ordinal].empty()) {
    return functions[ordinal];
  }
  return opec_support::StrPrintf("fn#%u", ordinal);
}

std::string Naming::Operation(int id) const {
  if (id < 0) {
    return "default";
  }
  if (static_cast<size_t>(id) < operations.size() && !operations[static_cast<size_t>(id)].empty()) {
    return operations[static_cast<size_t>(id)];
  }
  return opec_support::StrPrintf("op#%d", id);
}

std::string ChromeTraceJson(const std::vector<TraceProcess>& processes) {
  std::ostringstream out;
  out << "{\n  \"traceEvents\": [\n";
  bool first = true;
  uint64_t dropped = 0;
  for (size_t pid = 0; pid < processes.size(); ++pid) {
    EmitProcess(out, first, static_cast<int>(pid), processes[pid]);
    dropped += processes[pid].dropped;
  }
  out << "\n  ],\n  \"displayTimeUnit\": \"ms\",\n"
      << "  \"otherData\": {\"generator\": \"opec-obs\", \"time_unit\": \"modeled cycles\", "
      << "\"dropped_events\": " << dropped << "}\n"
      << "}\n";
  return out.str();
}

std::string ChromeTraceJson(const std::vector<Event>& events, const Naming& naming,
                            const std::string& process_name, uint64_t dropped) {
  return ChromeTraceJson({TraceProcess{process_name, events, naming, dropped}});
}

std::string JsonLines(const std::vector<Event>& events, const Naming& naming,
                      uint64_t dropped) {
  std::ostringstream out;
  if (dropped != 0) {
    out << "{\"header\":\"opec-obs\",\"dropped_events\":" << dropped << "}\n";
  }
  for (const Event& e : events) {
    out << "{\"kind\":\"" << EventKindName(e.kind) << "\",\"cycle\":" << e.cycle;
    if (e.operation_id == Event::kNoOperation) {
      out << ",\"op\":null";
    } else {
      out << ",\"op\":" << e.operation_id;
    }
    switch (e.kind) {
      case EventKind::kFunctionEnter:
      case EventKind::kFunctionExit:
        out << ",\"depth\":" << e.depth << ",\"fn\":\"" << JsonEscape(naming.Function(e.arg0))
            << "\"";
        break;
      case EventKind::kOperationEnter:
      case EventKind::kOperationExit:
        out << ",\"target\":\"" << JsonEscape(naming.Operation(static_cast<int>(e.arg0)))
            << "\",\"other\":\"" << JsonEscape(naming.Operation(static_cast<int>(e.arg1)))
            << "\"";
        break;
      case EventKind::kSvc:
        out << ",\"phase\":\"" << (e.arg1 == 0 ? "enter" : "exit") << "\"";
        break;
      case EventKind::kMpuReconfig:
        out << ",\"region\":" << e.arg0 << ",\"base\":\"" << opec_support::HexAddr(e.arg1)
            << "\",\"packed\":" << e.arg2;
        break;
      case EventKind::kMemFault:
      case EventKind::kBusFault:
        out << ",\"addr\":\"" << opec_support::HexAddr(e.arg0) << "\",\"size\":" << e.arg1
            << ",\"write\":" << ((e.arg2 & kFaultWrite) != 0 ? "true" : "false")
            << ",\"resolved\":" << ((e.arg2 & kFaultResolved) != 0 ? "true" : "false")
            << ",\"attack\":" << ((e.arg2 & kFaultAttack) != 0 ? "true" : "false");
        break;
      case EventKind::kMmioAccess:
        out << ",\"addr\":\"" << opec_support::HexAddr(e.arg0)
            << "\",\"size\":" << (e.arg1 & 0xFF)
            << ",\"write\":" << ((e.arg1 & 0x100) != 0 ? "true" : "false")
            << ",\"value\":" << e.arg2;
        break;
      case EventKind::kShadowSync:
        out << ",\"var\":" << e.arg0 << ",\"bytes\":" << e.arg1 << ",\"direction\":\""
            << (e.arg2 == kSyncWriteBack ? "write_back" : "copy_in") << "\"";
        break;
    }
    out << "}\n";
  }
  return out.str();
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    return false;
  }
  out << content;
  return out.good();
}

}  // namespace opec_obs
