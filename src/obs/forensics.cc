#include "src/obs/forensics.h"

#include <sstream>

#include "src/support/text.h"

namespace opec_obs {

namespace {

std::string OperationLabel(int id, const std::string& name) {
  if (id < 0) {
    return "default operation";
  }
  if (name.empty()) {
    return opec_support::StrPrintf("operation %d", id);
  }
  return opec_support::StrPrintf("operation %d (%s)", id, name.c_str());
}

}  // namespace

std::string FaultReport::Summary() const {
  std::string s = opec_support::StrPrintf(
      "%s on %s of %u bytes at %s in %s [%s, depth %d, cycle %llu]",
      bus_fault ? "BusFault" : "MemManage fault", write ? "write" : "read", size,
      opec_support::HexAddr(addr).c_str(), function.empty() ? "?" : function.c_str(),
      OperationLabel(operation_id, operation_name).c_str(), depth,
      static_cast<unsigned long long>(cycle));
  if (attack) {
    s += " [injected attack write]";
  }
  if (!deny_reason.empty()) {
    s += ": " + deny_reason;
  }
  return s;
}

std::string FaultReport::Render() const {
  std::ostringstream out;
  out << "=== " << (bus_fault ? "BusFault" : "MemManage fault") << " forensic report ===\n";
  out << "  access    : " << (privileged ? "privileged" : "unprivileged") << " "
      << (write ? "write" : "read") << " of " << size << " byte(s) at "
      << opec_support::HexAddr(addr);
  if (attack) {
    out << "  (injected attack write)";
  }
  out << "\n";
  out << "  where     : " << (function.empty() ? "?" : function) << ", "
      << OperationLabel(operation_id, operation_name) << ", call depth " << depth
      << ", modeled cycle " << cycle << "\n";
  out << "  decision  : " << (deny_reason.empty() ? "(no decision detail captured)" : deny_reason)
      << "\n";
  if (!mpu_regions.empty()) {
    out << "  MPU state :\n";
    for (const std::string& r : mpu_regions) {
      out << "    " << r << "\n";
    }
  }
  return out.str();
}

}  // namespace opec_obs
