// Over-privilege metrics from Section 6.4:
//
//   PT (partition-time over-privilege, Eq. 1): per domain, the fraction of
//   its accessible global-variable bytes that no function in the domain has a
//   data dependency on. OPEC's shadowing makes PT identically 0; ACES's
//   merged data regions make it positive.
//
//   ET (execution-time over-privilege, Eq. 2): per task, one minus the ratio
//   of globals actually used during execution to the globals the domain(s)
//   involved could access. Computed from execution traces (the paper's GDB
//   single-stepping stand-in).

#ifndef SRC_METRICS_OVER_PRIVILEGE_H_
#define SRC_METRICS_OVER_PRIVILEGE_H_

#include <string>
#include <vector>

#include "src/aces/aces.h"
#include "src/analysis/resource_analysis.h"
#include "src/compiler/policy.h"
#include "src/rt/trace.h"

namespace opec_metrics {

struct DomainPt {
  std::string domain;
  uint64_t accessible_bytes = 0;
  uint64_t unneeded_bytes = 0;
  double pt() const {
    return accessible_bytes == 0 ? 0.0
                                 : static_cast<double>(unneeded_bytes) / accessible_bytes;
  }
};

// PT per ACES compartment (Eq. 1).
std::vector<DomainPt> ComputeAcesPt(const opec_aces::AcesResult& aces);
// PT per OPEC operation — zero by construction, but computed, not assumed.
std::vector<DomainPt> ComputeOpecPt(const opec_compiler::Policy& policy);

struct TaskEt {
  int operation_id = -1;
  std::string task;  // the operation entry function name
  uint64_t used_bytes = 0;
  uint64_t needed_bytes = 0;
  double et() const {
    return needed_bytes == 0
               ? 0.0
               : 1.0 - static_cast<double>(used_bytes) / static_cast<double>(needed_bytes);
  }
};

// ET per task under OPEC: a task is an operation; needed = the operation's
// resource dependency; used = globals of the functions that actually executed
// inside the operation's trace window.
std::vector<TaskEt> ComputeOpecEt(
    const opec_compiler::Policy& policy, const opec_rt::ExecutionTrace& trace,
    const std::map<const opec_ir::Function*, opec_analysis::FunctionResources>& resources);

// ET for the same tasks under an ACES partitioning: needed = the union of the
// accessible globals of every compartment entered while executing the task.
std::vector<TaskEt> ComputeAcesEt(
    const opec_compiler::Policy& policy, const opec_aces::AcesResult& aces,
    const opec_rt::ExecutionTrace& trace,
    const std::map<const opec_ir::Function*, opec_analysis::FunctionResources>& resources);

// Cumulative-ratio points for a CDF plot (Figure 10): for each sorted value v,
// the fraction of samples <= v.
std::vector<std::pair<double, double>> Cdf(std::vector<double> values);

}  // namespace opec_metrics

#endif  // SRC_METRICS_OVER_PRIVILEGE_H_
