// Fixed-width table rendering for the bench binaries that regenerate the
// paper's tables and figures on the console.

#ifndef SRC_METRICS_REPORT_H_
#define SRC_METRICS_REPORT_H_

#include <string>
#include <vector>

namespace opec_metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row);
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// "12.34" style formatting helpers.
std::string Pct(double fraction, int decimals = 2);   // 0.0123 -> "1.23"
std::string Num(double value, int decimals = 2);

}  // namespace opec_metrics

#endif  // SRC_METRICS_REPORT_H_
