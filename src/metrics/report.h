// Fixed-width table rendering for the bench binaries that regenerate the
// paper's tables and figures on the console. The implementation lives in
// src/support/table.h so layers below metrics (observability) can render the
// same tables; this alias keeps the historical opec_metrics::Table name.

#ifndef SRC_METRICS_REPORT_H_
#define SRC_METRICS_REPORT_H_

#include <string>

#include "src/support/table.h"

namespace opec_metrics {

using Table = opec_support::Table;

// "12.34" style formatting helpers.
std::string Pct(double fraction, int decimals = 2);   // 0.0123 -> "1.23"
std::string Num(double value, int decimals = 2);

}  // namespace opec_metrics

#endif  // SRC_METRICS_REPORT_H_
