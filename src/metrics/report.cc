#include "src/metrics/report.h"

#include "src/support/text.h"

namespace opec_metrics {

std::string Pct(double fraction, int decimals) {
  return opec_support::StrPrintf("%.*f", decimals, fraction * 100.0);
}

std::string Num(double value, int decimals) {
  return opec_support::StrPrintf("%.*f", decimals, value);
}

}  // namespace opec_metrics
