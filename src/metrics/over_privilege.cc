#include "src/metrics/over_privilege.h"

#include <algorithm>
#include <map>
#include <set>

namespace opec_metrics {

using opec_aces::AcesResult;
using opec_analysis::FunctionResources;
using opec_compiler::Policy;
using opec_ir::Function;
using opec_ir::GlobalVariable;
using opec_rt::ExecutionTrace;

namespace {
uint64_t BytesOf(const std::set<const GlobalVariable*>& vars) {
  uint64_t n = 0;
  for (const GlobalVariable* gv : vars) {
    n += gv->size();
  }
  return n;
}
}  // namespace

std::vector<DomainPt> ComputeAcesPt(const AcesResult& aces) {
  std::vector<DomainPt> out;
  for (const opec_aces::Compartment& c : aces.compartments) {
    DomainPt d;
    d.domain = c.name;
    d.accessible_bytes = BytesOf(c.accessible_globals);
    std::set<const GlobalVariable*> unneeded;
    for (const GlobalVariable* gv : c.accessible_globals) {
      if (c.needed_globals.count(gv) == 0) {
        unneeded.insert(gv);
      }
    }
    d.unneeded_bytes = BytesOf(unneeded);
    out.push_back(d);
  }
  return out;
}

std::vector<DomainPt> ComputeOpecPt(const Policy& policy) {
  std::vector<DomainPt> out;
  for (const opec_compiler::OperationPolicy& op : policy.operations) {
    DomainPt d;
    d.domain = op.name;
    // An operation can access exactly its own data section: its internal
    // variables plus its own shadow copies — i.e. precisely needed_globals.
    d.accessible_bytes = BytesOf(op.needed_globals);
    d.unneeded_bytes = 0;
    out.push_back(d);
  }
  return out;
}

namespace {

// Functions executed inside each operation's trace window.
std::map<int, std::set<const Function*>> ExecutedByOperation(const ExecutionTrace& trace) {
  std::map<int, std::set<const Function*>> out;
  for (const opec_rt::TraceEvent& e : trace.events()) {
    out[e.operation_id].insert(e.fn);
  }
  return out;
}

std::set<const GlobalVariable*> UsedVars(
    const std::set<const Function*>& executed,
    const std::map<const Function*, FunctionResources>& resources) {
  std::set<const GlobalVariable*> used;
  for (const Function* fn : executed) {
    auto it = resources.find(fn);
    if (it == resources.end()) {
      continue;
    }
    for (const GlobalVariable* gv : it->second.AllGlobals()) {
      if (!gv->is_const()) {
        used.insert(gv);
      }
    }
  }
  return used;
}

}  // namespace

std::vector<TaskEt> ComputeOpecEt(
    const Policy& policy, const ExecutionTrace& trace,
    const std::map<const Function*, FunctionResources>& resources) {
  std::vector<TaskEt> out;
  auto executed = ExecutedByOperation(trace);
  for (const opec_compiler::OperationPolicy& op : policy.operations) {
    auto it = executed.find(op.id);
    // The default operation runs as id -1 before any entry; map it.
    if (op.id == policy.default_op_id && it == executed.end()) {
      it = executed.find(-1);
    }
    if (it == executed.end()) {
      continue;  // task never ran in this scenario
    }
    TaskEt t;
    t.operation_id = op.id;
    t.task = op.entry;
    t.used_bytes = BytesOf(UsedVars(it->second, resources));
    t.needed_bytes = BytesOf(op.needed_globals);
    out.push_back(t);
  }
  return out;
}

std::vector<TaskEt> ComputeAcesEt(
    const Policy& policy, const AcesResult& aces, const ExecutionTrace& trace,
    const std::map<const Function*, FunctionResources>& resources) {
  std::vector<TaskEt> out;
  auto executed = ExecutedByOperation(trace);
  for (const opec_compiler::OperationPolicy& op : policy.operations) {
    auto it = executed.find(op.id);
    if (op.id == policy.default_op_id && it == executed.end()) {
      it = executed.find(-1);
    }
    if (it == executed.end()) {
      continue;
    }
    TaskEt t;
    t.operation_id = op.id;
    t.task = op.entry;
    t.used_bytes = BytesOf(UsedVars(it->second, resources));
    // Needed under ACES: everything accessible to the compartments the task's
    // execution flowed through (Section 6.4's Eq. 2 denominator).
    std::set<const GlobalVariable*> needed;
    for (const Function* fn : it->second) {
      int cid = aces.CompartmentOf(fn);
      if (cid < 0) {
        continue;
      }
      const opec_aces::Compartment& c = aces.compartments[static_cast<size_t>(cid)];
      needed.insert(c.accessible_globals.begin(), c.accessible_globals.end());
    }
    t.needed_bytes = BytesOf(needed);
    out.push_back(t);
  }
  return out;
}

std::vector<std::pair<double, double>> Cdf(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::vector<std::pair<double, double>> out;
  size_t n = values.size();
  for (size_t i = 0; i < n; ++i) {
    out.emplace_back(values[i], static_cast<double>(i + 1) / static_cast<double>(n));
  }
  return out;
}

}  // namespace opec_metrics
