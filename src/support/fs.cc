#include "src/support/fs.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "src/support/text.h"

namespace opec_support {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return StrPrintf("%s '%s': %s", what.c_str(), path.c_str(), std::strerror(errno));
}

}  // namespace

std::string EnsureDirs(const std::string& path) {
  if (path.empty()) {
    return "cannot create directory: empty path";
  }
  // Walk the components left to right, creating each missing prefix. EEXIST
  // from a concurrent creator is success; EEXIST over a non-directory is the
  // error the final stat() below reports precisely.
  for (size_t i = 1; i <= path.size(); ++i) {
    if (i != path.size() && path[i] != '/') {
      continue;
    }
    std::string prefix = path.substr(0, i);
    if (prefix.empty() || prefix == "/" || prefix == ".") {
      continue;
    }
    if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
      return ErrnoMessage("cannot create directory", prefix);
    }
  }
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return ErrnoMessage("cannot create directory", path);
  }
  if (!S_ISDIR(st.st_mode)) {
    return StrPrintf("cannot create directory '%s': path exists and is not a directory",
                     path.c_str());
  }
  return "";
}

std::string WriteFileAtomic(const std::string& path, const std::vector<uint8_t>& bytes) {
  // The temp name carries the pid so two processes racing to publish the same
  // content-addressed artifact never clobber each other's partial writes; the
  // final rename is atomic either way.
  std::string tmp = StrPrintf("%s.tmp.%d", path.c_str(), static_cast<int>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return ErrnoMessage("cannot open for writing", tmp);
  }
  size_t written = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  int close_err = std::fclose(f);
  if (written != bytes.size() || close_err != 0) {
    std::remove(tmp.c_str());
    return StrPrintf("short write to '%s'", tmp.c_str());
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::string err = ErrnoMessage("cannot rename into place", path);
    std::remove(tmp.c_str());
    return err;
  }
  return "";
}

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  out->clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  uint8_t buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    out->clear();
  }
  return ok;
}

}  // namespace opec_support
