#include "src/support/text.h"

#include <cstdio>

namespace opec_support {

std::string StrPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string HexAddr(uint32_t addr) { return StrPrintf("0x%08X", addr); }

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

}  // namespace opec_support
