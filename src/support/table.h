// Fixed-width console table rendering. Shared by the metrics/bench reports
// (paper tables and figures) and the observability layer's per-operation
// profile output.

#ifndef SRC_SUPPORT_TABLE_H_
#define SRC_SUPPORT_TABLE_H_

#include <string>
#include <vector>

namespace opec_support {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row);
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace opec_support

#endif  // SRC_SUPPORT_TABLE_H_
