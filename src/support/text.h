// Small string-formatting helpers (GCC 12 lacks <format>).

#ifndef SRC_SUPPORT_TEXT_H_
#define SRC_SUPPORT_TEXT_H_

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace opec_support {

// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Renders an address as 0xXXXXXXXX.
std::string HexAddr(uint32_t addr);

// Joins the elements with the separator.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

}  // namespace opec_support

#endif  // SRC_SUPPORT_TEXT_H_
