// Lightweight invariant-checking macros used across the OPEC reproduction.
//
// OPEC_CHECK fires in all build modes: these guard *host* logic errors
// (misuse of the library API, corrupted internal state), never guest-program
// faults. Guest faults are modeled values (see src/hw/fault.h), not aborts.

#ifndef SRC_SUPPORT_CHECK_H_
#define SRC_SUPPORT_CHECK_H_

#include <string>

namespace opec_support {

// Prints the failure message and aborts the process. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const char* cond, const std::string& msg);

}  // namespace opec_support

#define OPEC_CHECK(cond)                                               \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::opec_support::CheckFailed(__FILE__, __LINE__, #cond, "");      \
    }                                                                  \
  } while (0)

#define OPEC_CHECK_MSG(cond, msg)                                      \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::opec_support::CheckFailed(__FILE__, __LINE__, #cond, (msg));   \
    }                                                                  \
  } while (0)

#define OPEC_UNREACHABLE(msg) ::opec_support::CheckFailed(__FILE__, __LINE__, "unreachable", (msg))

#endif  // SRC_SUPPORT_CHECK_H_
