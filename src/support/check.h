// Lightweight invariant-checking macros used across the OPEC reproduction.
//
// OPEC_CHECK fires in all build modes: these guard *host* logic errors
// (misuse of the library API, corrupted internal state), never guest-program
// faults. Guest faults are modeled values (see src/hw/fault.h), not aborts.

#ifndef SRC_SUPPORT_CHECK_H_
#define SRC_SUPPORT_CHECK_H_

#include <stdexcept>
#include <string>

namespace opec_support {

// Thrown instead of aborting while a ScopedCheckThrow is installed on the
// current thread. The campaign executor installs one around each job so a
// crashing job becomes a structured result instead of taking down the whole
// campaign.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

// While alive, OPEC_CHECK failures on the current thread throw CheckError
// instead of aborting the process. Nestable; thread-local, so one worker's
// capture mode never affects another thread.
class ScopedCheckThrow {
 public:
  ScopedCheckThrow();
  ~ScopedCheckThrow();
  ScopedCheckThrow(const ScopedCheckThrow&) = delete;
  ScopedCheckThrow& operator=(const ScopedCheckThrow&) = delete;
};

// Prints the failure message and aborts the process — or throws CheckError
// when the current thread is in ScopedCheckThrow capture mode. Never returns
// normally.
[[noreturn]] void CheckFailed(const char* file, int line, const char* cond, const std::string& msg);

}  // namespace opec_support

#define OPEC_CHECK(cond)                                               \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::opec_support::CheckFailed(__FILE__, __LINE__, #cond, "");      \
    }                                                                  \
  } while (0)

#define OPEC_CHECK_MSG(cond, msg)                                      \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::opec_support::CheckFailed(__FILE__, __LINE__, #cond, (msg));   \
    }                                                                  \
  } while (0)

#define OPEC_UNREACHABLE(msg) ::opec_support::CheckFailed(__FILE__, __LINE__, "unreachable", (msg))

#endif  // SRC_SUPPORT_CHECK_H_
