// Small filesystem helpers shared by the campaign executor and the
// distributed artifact cache (src/dist). These return error strings instead
// of firing OPEC_CHECK: an unwritable output directory is an environment
// problem the caller should surface as a clean CLI/API error, not a host
// logic error.

#ifndef SRC_SUPPORT_FS_H_
#define SRC_SUPPORT_FS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace opec_support {

// Creates `path` and every missing parent (mkdir -p). Returns an empty string
// on success (including when the directory already exists), otherwise a
// message naming the failing path and the errno cause. Never aborts.
std::string EnsureDirs(const std::string& path);

// Writes `bytes` to `path` atomically: a unique temp file in the same
// directory, fsync-free write, then rename into place — concurrent readers
// (and concurrent writers of the same content-addressed name) never observe a
// torn file. Returns an empty string on success, else an error message.
std::string WriteFileAtomic(const std::string& path, const std::vector<uint8_t>& bytes);

// Reads the whole file into `out`. Returns false (with `out` cleared) when
// the file cannot be opened or read.
bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

}  // namespace opec_support

#endif  // SRC_SUPPORT_FS_H_
