#include "src/support/check.h"

#include <cstdio>
#include <cstdlib>

namespace opec_support {

namespace {
// Depth of nested ScopedCheckThrow scopes on this thread. Deliberately
// thread_local, never a plain global: campaign workers and fuzz jobs install
// guards concurrently, and a shared counter would let one thread's guard
// change how another thread's CHECK failure resolves (throw vs abort) — or
// tear outright. Each thread therefore carries its own capture depth;
// campaign_test.cc (ScopedCheckThrowTest.CaptureIsThreadLocalUnderConcurrency)
// hammers this from a pool under the OPEC_SANITIZE=thread configuration.
thread_local int check_throw_depth = 0;

std::string FailureMessage(const char* file, int line, const char* cond,
                           const std::string& msg) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), "OPEC_CHECK failed at %s:%d: %s%s%s", file, line, cond,
                msg.empty() ? "" : " — ", msg.c_str());
  return buf;
}
}  // namespace

ScopedCheckThrow::ScopedCheckThrow() { ++check_throw_depth; }
ScopedCheckThrow::~ScopedCheckThrow() { --check_throw_depth; }

void CheckFailed(const char* file, int line, const char* cond, const std::string& msg) {
  std::string what = FailureMessage(file, line, cond, msg);
  if (check_throw_depth > 0) {
    throw CheckError(what);
  }
  std::fprintf(stderr, "%s\n", what.c_str());
  std::abort();
}

}  // namespace opec_support
