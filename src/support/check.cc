#include "src/support/check.h"

#include <cstdio>
#include <cstdlib>

namespace opec_support {

void CheckFailed(const char* file, int line, const char* cond, const std::string& msg) {
  std::fprintf(stderr, "OPEC_CHECK failed at %s:%d: %s%s%s\n", file, line, cond,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace opec_support
