#include "src/support/table.h"

#include <algorithm>

namespace opec_support {

void Table::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < row.size(); ++i) {
      line += " " + row[i] + std::string(widths[i] - row[i].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t w : widths) {
    sep += std::string(w + 2, '-') + "+";
  }
  sep += "\n";
  std::string out = sep + render_row(headers_) + sep;
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out + sep;
}

}  // namespace opec_support
