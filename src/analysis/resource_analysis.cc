#include "src/analysis/resource_analysis.h"

#include "src/support/check.h"

namespace opec_analysis {

using opec_hw::PeripheralInfo;
using opec_hw::SocDescription;
using opec_ir::Expr;
using opec_ir::ExprKind;
using opec_ir::Function;
using opec_ir::GlobalVariable;
using opec_ir::Module;
using opec_ir::Stmt;
using opec_ir::StmtKind;
using opec_ir::StmtPtr;

namespace {

class Collector {
 public:
  Collector(const Function& fn, PointsToAnalysis& pta, const SocDescription& soc,
            FunctionResources& out)
      : fn_(fn), pta_(pta), soc_(soc), out_(out) {}

  void Stmt(const opec_ir::Stmt& s) {
    switch (s.kind) {
      case StmtKind::kAssign:
        Lvalue(*s.lhs, /*is_write=*/true);
        Rvalue(*s.expr);
        break;
      case StmtKind::kExpr:
      case StmtKind::kReturn:
        if (s.expr != nullptr) {
          Rvalue(*s.expr);
        }
        break;
      case StmtKind::kIf:
      case StmtKind::kWhile:
        Rvalue(*s.expr);
        break;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        break;
    }
    for (const StmtPtr& t : s.body) {
      Stmt(*t);
    }
    for (const StmtPtr& t : s.orelse) {
      Stmt(*t);
    }
  }

 private:
  void RecordGlobal(const GlobalVariable* gv, bool is_write) {
    if (is_write) {
      out_.writes.insert(gv);
    } else {
      out_.reads.insert(gv);
    }
  }

  void RecordConstAddr(uint32_t addr) {
    const PeripheralInfo* p = soc_.Find(addr);
    if (p == nullptr) {
      return;  // a constant RAM/flash address, not a peripheral
    }
    if (p->is_core) {
      out_.core_peripherals.insert(p->name);
    } else {
      out_.peripherals.insert(p->name);
    }
  }

  // Record the memory objects an lvalue designates. `is_write` marks stores.
  void Lvalue(const Expr& e, bool is_write) {
    switch (e.kind) {
      case ExprKind::kGlobal:
        RecordGlobal(e.global, is_write);
        return;
      case ExprKind::kLocal:
        return;
      case ExprKind::kField:
        Lvalue(*e.operands[0], is_write);
        return;
      case ExprKind::kIndex:
        Rvalue(*e.operands[1]);
        if (e.operands[0]->type->IsPointer()) {
          ThroughPointer(*e.operands[0], is_write);
        } else {
          Lvalue(*e.operands[0], is_write);
        }
        return;
      case ExprKind::kDeref:
        ThroughPointer(*e.operands[0], is_write);
        return;
      default:
        OPEC_UNREACHABLE("non-lvalue in Lvalue()");
    }
  }

  // An access through a pointer expression: resolve via points-to (indirect
  // global access) and via constant addresses (peripheral access — the
  // backward-slicing equivalent of Section 4.2).
  void ThroughPointer(const Expr& ptr, bool is_write) {
    Rvalue(ptr);  // evaluating the pointer itself may touch memory
    for (const GlobalVariable* gv : pta_.PointeeGlobals(&ptr)) {
      RecordGlobal(gv, is_write);
    }
    for (uint32_t addr : pta_.PointeeConstAddrs(&ptr)) {
      RecordConstAddr(addr);
    }
  }

  void Rvalue(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kGlobal:
        RecordGlobal(e.global, /*is_write=*/false);
        return;
      case ExprKind::kDeref:
        ThroughPointer(*e.operands[0], /*is_write=*/false);
        return;
      case ExprKind::kIndex:
        Rvalue(*e.operands[1]);
        if (e.operands[0]->type->IsPointer()) {
          ThroughPointer(*e.operands[0], /*is_write=*/false);
        } else {
          Lvalue(*e.operands[0], /*is_write=*/false);
        }
        return;
      case ExprKind::kField:
        Lvalue(*e.operands[0], /*is_write=*/false);
        return;
      case ExprKind::kAddrOf:
        // Taking an address does not access memory; the use through the
        // pointer is attributed wherever the dereference happens.
        // Still walk operands of compound lvalues (e.g. index expressions).
        if (e.operands[0]->kind == ExprKind::kIndex) {
          Rvalue(*e.operands[0]->operands[1]);
        }
        return;
      default:
        for (const opec_ir::ExprPtr& op : e.operands) {
          Rvalue(*op);
        }
        return;
    }
  }

  const Function& fn_;
  PointsToAnalysis& pta_;
  const SocDescription& soc_;
  FunctionResources& out_;
};

}  // namespace

std::map<const Function*, FunctionResources> ResourceAnalysis::Run(const Module& module,
                                                                   PointsToAnalysis& pta,
                                                                   const SocDescription& soc) {
  pta.Run();
  std::map<const Function*, FunctionResources> out;
  for (const auto& fn : module.functions()) {
    FunctionResources& res = out[fn.get()];
    Collector collector(*fn, pta, soc, res);
    for (const StmtPtr& s : fn->body()) {
      collector.Stmt(*s);
    }
  }
  return out;
}

}  // namespace opec_analysis
