#include "src/analysis/call_graph.h"

#include "src/support/check.h"

namespace opec_analysis {

using opec_ir::Expr;
using opec_ir::ExprKind;
using opec_ir::Function;
using opec_ir::Module;
using opec_ir::Stmt;
using opec_ir::StmtPtr;
using opec_ir::Type;

bool TypesCompatibleForICall(const Type* signature, const Type* candidate) {
  OPEC_CHECK(signature->IsFunction() && candidate->IsFunction());
  if (signature->params().size() != candidate->params().size()) {
    return false;
  }
  if (signature->return_type() != candidate->return_type()) {
    // Ints of different widths still "return a value"; require exact match
    // only when either side is a pointer/struct/void.
    const Type* a = signature->return_type();
    const Type* b = candidate->return_type();
    if (!(a->IsInt() && b->IsInt())) {
      return false;
    }
  }
  for (size_t i = 0; i < signature->params().size(); ++i) {
    const Type* a = signature->params()[i];
    const Type* b = candidate->params()[i];
    if (a == b) {
      continue;
    }
    // Pointer and struct parameters must match exactly (the paper's rule);
    // integer parameters match any integer.
    if (a->IsInt() && b->IsInt()) {
      continue;
    }
    return false;
  }
  return true;
}

namespace {

void CollectCalls(const Function* caller, const Expr& e,
                  std::map<const Function*, std::set<const Function*>>& edges,
                  std::vector<std::pair<const Function*, const Expr*>>& icalls) {
  if (e.kind == ExprKind::kCall) {
    edges[caller].insert(e.func);
  } else if (e.kind == ExprKind::kICall) {
    icalls.emplace_back(caller, &e);
  }
  for (const opec_ir::ExprPtr& op : e.operands) {
    CollectCalls(caller, *op, edges, icalls);
  }
}

void CollectStmt(const Function* caller, const Stmt& s,
                 std::map<const Function*, std::set<const Function*>>& edges,
                 std::vector<std::pair<const Function*, const Expr*>>& icalls) {
  if (s.lhs != nullptr) {
    CollectCalls(caller, *s.lhs, edges, icalls);
  }
  if (s.expr != nullptr) {
    CollectCalls(caller, *s.expr, edges, icalls);
  }
  for (const StmtPtr& t : s.body) {
    CollectStmt(caller, *t, edges, icalls);
  }
  for (const StmtPtr& t : s.orelse) {
    CollectStmt(caller, *t, edges, icalls);
  }
}

}  // namespace

CallGraph CallGraph::Build(const Module& module, PointsToAnalysis& pta) {
  pta.Run();
  CallGraph cg;
  cg.pta_seconds_ = pta.solve_seconds();

  std::vector<std::pair<const Function*, const Expr*>> icalls;
  for (const auto& fn : module.functions()) {
    cg.edges_[fn.get()];  // ensure every function has a node
    for (const StmtPtr& s : fn->body()) {
      CollectStmt(fn.get(), *s, cg.edges_, icalls);
    }
  }

  for (const auto& [caller, expr] : icalls) {
    ICallSite site;
    site.caller = caller;
    site.expr = expr;
    site.targets = pta.ICallTargets(expr);
    if (!site.targets.empty()) {
      site.resolved_by_pta = true;
    } else {
      // Type-based fallback (Section 4.1): all functions with an identical
      // type are potential targets.
      for (const auto& fn : module.functions()) {
        if (TypesCompatibleForICall(expr->signature, fn->type())) {
          site.targets.insert(fn.get());
        }
      }
      site.resolved_by_type = !site.targets.empty();
    }
    for (const Function* target : site.targets) {
      cg.edges_[caller].insert(target);
    }
    cg.icall_sites_.push_back(std::move(site));
  }
  return cg;
}

const std::set<const Function*>& CallGraph::Callees(const Function* fn) const {
  auto it = edges_.find(fn);
  return it == edges_.end() ? empty_ : it->second;
}

ICallStats CallGraph::Stats() const {
  ICallStats stats;
  stats.num_icalls = static_cast<int>(icall_sites_.size());
  stats.pta_seconds = pta_seconds_;
  int total_targets = 0;
  int resolved = 0;
  for (const ICallSite& site : icall_sites_) {
    if (site.resolved_by_pta) {
      ++stats.resolved_by_pta;
    } else if (site.resolved_by_type) {
      ++stats.resolved_by_type;
    } else {
      ++stats.unresolved;
    }
    if (!site.targets.empty()) {
      ++resolved;
      total_targets += static_cast<int>(site.targets.size());
      stats.max_targets = std::max(stats.max_targets, static_cast<int>(site.targets.size()));
    }
  }
  stats.avg_targets = resolved == 0 ? 0.0 : static_cast<double>(total_targets) / resolved;
  return stats;
}

std::set<const Function*> CallGraph::Reachable(
    const Function* root, const std::set<const Function*>& stop_at) const {
  std::set<const Function*> visited;
  std::vector<const Function*> stack{root};
  visited.insert(root);
  while (!stack.empty()) {
    const Function* fn = stack.back();
    stack.pop_back();
    for (const Function* callee : Callees(fn)) {
      if (visited.count(callee) > 0) {
        continue;
      }
      if (stop_at.count(callee) > 0) {
        continue;  // backtrack at other operation entries (Section 4.3)
      }
      visited.insert(callee);
      stack.push_back(callee);
    }
  }
  return visited;
}

}  // namespace opec_analysis
