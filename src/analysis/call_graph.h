// Call graph construction with indirect-call resolution (Section 4.1).
//
// Direct edges come straight from the IR. Indirect calls are resolved by the
// points-to analysis; icalls the points-to cannot resolve fall back to
// type-based matching: two function types are identical when the argument
// count, the struct argument types, the pointer argument types and the return
// type agree. The result is a sound (over-approximated) call graph.

#ifndef SRC_ANALYSIS_CALL_GRAPH_H_
#define SRC_ANALYSIS_CALL_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/points_to.h"
#include "src/ir/module.h"

namespace opec_analysis {

// One indirect-call site and how it was resolved — feeds Table 3.
struct ICallSite {
  const opec_ir::Function* caller = nullptr;
  const opec_ir::Expr* expr = nullptr;
  std::set<const opec_ir::Function*> targets;
  bool resolved_by_pta = false;   // SVF column in Table 3
  bool resolved_by_type = false;  // Type column in Table 3
};

struct ICallStats {
  int num_icalls = 0;
  int resolved_by_pta = 0;
  int resolved_by_type = 0;
  int unresolved = 0;
  double pta_seconds = 0;
  double avg_targets = 0;  // over resolved icalls
  int max_targets = 0;
};

class CallGraph {
 public:
  // Builds the graph. The points-to analysis is Run() if it has not been.
  static CallGraph Build(const opec_ir::Module& module, PointsToAnalysis& pta);

  const std::set<const opec_ir::Function*>& Callees(const opec_ir::Function* fn) const;
  const std::vector<ICallSite>& icall_sites() const { return icall_sites_; }
  ICallStats Stats() const;

  // Depth-first traversal from `root` over the call graph, backtracking at
  // any function in `stop_at` (the other operation entries, per Section 4.3).
  // The root is always included, even if it is also in `stop_at`.
  std::set<const opec_ir::Function*> Reachable(
      const opec_ir::Function* root, const std::set<const opec_ir::Function*>& stop_at) const;

 private:
  std::map<const opec_ir::Function*, std::set<const opec_ir::Function*>> edges_;
  std::vector<ICallSite> icall_sites_;
  double pta_seconds_ = 0;
  std::set<const opec_ir::Function*> empty_;
};

// The paper's type-identity rule for the fallback matching.
bool TypesCompatibleForICall(const opec_ir::Type* signature, const opec_ir::Type* candidate);

}  // namespace opec_analysis

#endif  // SRC_ANALYSIS_CALL_GRAPH_H_
