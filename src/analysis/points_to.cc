#include "src/analysis/points_to.h"

#include <chrono>

#include "src/support/check.h"

namespace opec_analysis {

using opec_ir::Expr;
using opec_ir::ExprKind;
using opec_ir::Function;
using opec_ir::GlobalVariable;
using opec_ir::Module;
using opec_ir::Stmt;
using opec_ir::StmtKind;
using opec_ir::StmtPtr;

PointsToAnalysis::PointsToAnalysis(const Module& module, SolverMode mode)
    : module_(module), mode_(mode) {}

int PointsToAnalysis::NewNode(PtaNode node) {
  nodes_.push_back(node);
  pts_.emplace_back();
  return static_cast<int>(nodes_.size()) - 1;
}

int PointsToAnalysis::GlobalNode(const GlobalVariable* gv) {
  auto it = global_nodes_.find(gv);
  if (it != global_nodes_.end()) {
    return it->second;
  }
  PtaNode n;
  n.kind = PtaNode::Kind::kGlobal;
  n.global = gv;
  return global_nodes_[gv] = NewNode(n);
}

int PointsToAnalysis::LocalNode(const Function* fn, int slot) {
  auto key = std::make_pair(fn, slot);
  auto it = local_nodes_.find(key);
  if (it != local_nodes_.end()) {
    return it->second;
  }
  PtaNode n;
  n.kind = PtaNode::Kind::kLocal;
  n.func = fn;
  n.local_slot = slot;
  return local_nodes_[key] = NewNode(n);
}

int PointsToAnalysis::FuncNode(const Function* fn) {
  auto it = func_nodes_.find(fn);
  if (it != func_nodes_.end()) {
    return it->second;
  }
  PtaNode n;
  n.kind = PtaNode::Kind::kFunc;
  n.func = fn;
  return func_nodes_[fn] = NewNode(n);
}

int PointsToAnalysis::MemConstNode(uint32_t addr) {
  auto it = memconst_nodes_.find(addr);
  if (it != memconst_nodes_.end()) {
    return it->second;
  }
  PtaNode n;
  n.kind = PtaNode::Kind::kMemConst;
  n.const_addr = addr;
  return memconst_nodes_[addr] = NewNode(n);
}

int PointsToAnalysis::RetNode(const Function* fn) {
  auto it = ret_nodes_.find(fn);
  if (it != ret_nodes_.end()) {
    return it->second;
  }
  PtaNode n;
  n.kind = PtaNode::Kind::kRet;
  n.func = fn;
  return ret_nodes_[fn] = NewNode(n);
}

int PointsToAnalysis::TempNode(const Expr* e) {
  auto it = temp_nodes_.find(e);
  if (it != temp_nodes_.end()) {
    return it->second;
  }
  PtaNode n;
  n.kind = PtaNode::Kind::kTemp;
  n.expr = e;
  return temp_nodes_[e] = NewNode(n);
}

void PointsToAnalysis::AddBase(int node, int loc) { pts_[static_cast<size_t>(node)].insert(loc); }
void PointsToAnalysis::AddCopy(int from, int to) { copy_edges_.emplace_back(from, to); }
void PointsToAnalysis::AddLoad(int ptr, int dst) { loads_.emplace_back(ptr, dst); }
void PointsToAnalysis::AddStore(int ptr, int src) { stores_.emplace_back(ptr, src); }

int PointsToAnalysis::LocationOf(const Function& fn, const Expr& lvalue) {
  switch (lvalue.kind) {
    case ExprKind::kGlobal:
      return GlobalNode(lvalue.global);
    case ExprKind::kLocal:
      return LocalNode(&fn, lvalue.local_slot);
    case ExprKind::kField:
      // Field-insensitive: collapse onto the base aggregate.
      return LocationOf(fn, *lvalue.operands[0]);
    case ExprKind::kIndex: {
      const Expr& base = *lvalue.operands[0];
      ProcessExpr(fn, *lvalue.operands[1]);
      if (base.type->IsPointer()) {
        // p[i]: the location is whatever p points to — handled by the caller
        // through the pointer temp node (returns -1 here; callers use
        // load/store through the pointer).
        return -1;
      }
      return LocationOf(fn, base);
    }
    case ExprKind::kDeref:
      return -1;  // location(s) = pts(ptr); handled via load/store constraints
    default:
      return -1;
  }
}

int PointsToAnalysis::ProcessExpr(const Function& fn, const Expr& e) {
  int temp = TempNode(&e);
  switch (e.kind) {
    case ExprKind::kIntConst:
      if (e.type->IsPointer() && e.int_value != 0) {
        AddBase(temp, MemConstNode(static_cast<uint32_t>(e.int_value)));
      }
      break;
    case ExprKind::kFuncAddr:
      AddBase(temp, FuncNode(e.func));
      break;
    case ExprKind::kLocal:
      AddCopy(LocalNode(&fn, e.local_slot), temp);
      break;
    case ExprKind::kGlobal:
      AddCopy(GlobalNode(e.global), temp);
      break;
    case ExprKind::kAddrOf: {
      const Expr& lv = *e.operands[0];
      int loc = LocationOf(fn, lv);
      if (loc >= 0) {
        AddBase(temp, loc);
      } else if (lv.kind == ExprKind::kDeref ||
                 (lv.kind == ExprKind::kIndex && lv.operands[0]->type->IsPointer())) {
        // &(*p) or &p[i]: aliases p itself.
        int p = ProcessExpr(fn, *lv.operands[0]);
        if (lv.kind == ExprKind::kIndex) {
          ProcessExpr(fn, *lv.operands[1]);
        }
        AddCopy(p, temp);
      }
      break;
    }
    case ExprKind::kDeref: {
      int p = ProcessExpr(fn, *e.operands[0]);
      AddLoad(p, temp);
      break;
    }
    case ExprKind::kIndex: {
      const Expr& base = *e.operands[0];
      ProcessExpr(fn, *e.operands[1]);
      if (base.type->IsPointer()) {
        int p = ProcessExpr(fn, base);
        AddLoad(p, temp);
      } else {
        int loc = LocationOf(fn, base);
        if (loc >= 0) {
          AddCopy(loc, temp);
        }
      }
      break;
    }
    case ExprKind::kField: {
      int loc = LocationOf(fn, e);
      if (loc >= 0) {
        AddCopy(loc, temp);
      }
      break;
    }
    case ExprKind::kUnary:
    case ExprKind::kBinary:
      for (const opec_ir::ExprPtr& op : e.operands) {
        int t = ProcessExpr(fn, *op);
        // Pointer arithmetic (ptr + k) keeps pointing at the same object.
        if (op->type->IsPointer()) {
          AddCopy(t, temp);
        }
      }
      break;
    case ExprKind::kCast: {
      int t = ProcessExpr(fn, *e.operands[0]);
      AddCopy(t, temp);
      // Integer literal cast to pointer: a constant memory address.
      if (e.type->IsPointer() && e.operands[0]->kind == ExprKind::kIntConst &&
          e.operands[0]->int_value != 0) {
        AddBase(temp, MemConstNode(static_cast<uint32_t>(e.operands[0]->int_value)));
      }
      break;
    }
    case ExprKind::kCall:
      WireCall(fn, e, temp);
      break;
    case ExprKind::kICall: {
      int p = ProcessExpr(fn, *e.operands[0]);
      for (size_t i = 1; i < e.operands.size(); ++i) {
        ProcessExpr(fn, *e.operands[i]);
      }
      icall_sites_.emplace_back(p, &e);
      break;
    }
  }
  return temp;
}

void PointsToAnalysis::WireCall(const Function& fn, const Expr& call, int temp) {
  for (const opec_ir::ExprPtr& arg : call.operands) {
    ProcessExpr(fn, *arg);
  }
  const Function* callee = call.func;
  for (size_t i = 0; i < call.operands.size(); ++i) {
    AddCopy(TempNode(call.operands[i].get()), LocalNode(callee, static_cast<int>(i)));
  }
  AddCopy(RetNode(callee), temp);
}

void PointsToAnalysis::WireCallee(const Expr& call, const Function* callee) {
  // Wire an icall site to a resolved callee: args (operands[1..]) to params,
  // return node to the call temp.
  size_t num_args = call.operands.size() - 1;
  if (static_cast<size_t>(callee->param_count()) != num_args) {
    return;  // arity mismatch: not a feasible target
  }
  for (size_t i = 0; i < num_args; ++i) {
    AddCopy(TempNode(call.operands[i + 1].get()), LocalNode(callee, static_cast<int>(i)));
  }
  AddCopy(RetNode(callee), TempNode(&call));
}

void PointsToAnalysis::ProcessStmt(const Function& fn, const Stmt& s) {
  switch (s.kind) {
    case StmtKind::kAssign: {
      int rhs = ProcessExpr(fn, *s.expr);
      const Expr& lhs = *s.lhs;
      int loc = LocationOf(fn, lhs);
      if (loc >= 0) {
        AddCopy(rhs, loc);
      } else if (lhs.kind == ExprKind::kDeref) {
        int p = ProcessExpr(fn, *lhs.operands[0]);
        AddStore(p, rhs);
      } else if (lhs.kind == ExprKind::kIndex && lhs.operands[0]->type->IsPointer()) {
        int p = ProcessExpr(fn, *lhs.operands[0]);
        ProcessExpr(fn, *lhs.operands[1]);
        AddStore(p, rhs);
      } else if (lhs.kind == ExprKind::kField || lhs.kind == ExprKind::kIndex) {
        // Field/index of a deref chain: find the innermost pointer.
        const Expr* base = &lhs;
        while (base->kind == ExprKind::kField || base->kind == ExprKind::kIndex) {
          base = base->operands[0].get();
        }
        if (base->kind == ExprKind::kDeref) {
          int p = ProcessExpr(fn, *base->operands[0]);
          AddStore(p, rhs);
        }
      }
      break;
    }
    case StmtKind::kExpr:
      ProcessExpr(fn, *s.expr);
      break;
    case StmtKind::kIf:
      ProcessExpr(fn, *s.expr);
      for (const StmtPtr& t : s.body) {
        ProcessStmt(fn, *t);
      }
      for (const StmtPtr& t : s.orelse) {
        ProcessStmt(fn, *t);
      }
      break;
    case StmtKind::kWhile:
      ProcessExpr(fn, *s.expr);
      for (const StmtPtr& t : s.body) {
        ProcessStmt(fn, *t);
      }
      break;
    case StmtKind::kReturn:
      if (s.expr != nullptr) {
        AddCopy(ProcessExpr(fn, *s.expr), RetNode(&fn));
      }
      break;
    case StmtKind::kBreak:
    case StmtKind::kContinue:
      break;
  }
}

void PointsToAnalysis::ProcessFunction(const Function& fn) {
  for (const StmtPtr& s : fn.body()) {
    ProcessStmt(fn, *s);
  }
}

void PointsToAnalysis::Run() {
  if (solved_) {
    return;
  }
  auto start = std::chrono::steady_clock::now();
  for (const auto& fn : module_.functions()) {
    ProcessFunction(*fn);
  }
  Solve();
  solved_ = true;
  solve_seconds_ = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

void PointsToAnalysis::Solve() {
  if (mode_ == SolverMode::kExhaustive) {
    SolveExhaustive();
  } else {
    SolveWorklist();
  }
}

// Reference solver: re-scan every constraint until nothing changes. Quadratic
// and worse on large graphs, but trivially matches the constraint semantics;
// kept selectable as the oracle for the differential tests.
void PointsToAnalysis::SolveExhaustive() {
  bool changed = true;
  while (changed) {
    changed = false;
    // Copy edges.
    for (const auto& [from, to] : copy_edges_) {
      auto& dst = pts_[static_cast<size_t>(to)];
      size_t before = dst.size();
      const auto& src = pts_[static_cast<size_t>(from)];
      dst.insert(src.begin(), src.end());
      changed |= dst.size() != before;
    }
    // Loads: dst ⊇ pts(l) for each l ∈ pts(ptr).
    for (const auto& [ptr, dst] : loads_) {
      auto& out = pts_[static_cast<size_t>(dst)];
      size_t before = out.size();
      for (int l : pts_[static_cast<size_t>(ptr)]) {
        const auto& src = pts_[static_cast<size_t>(l)];
        out.insert(src.begin(), src.end());
      }
      changed |= out.size() != before;
    }
    // Stores: pts(l) ⊇ pts(src) for each l ∈ pts(ptr).
    for (const auto& [ptr, src] : stores_) {
      const auto& in = pts_[static_cast<size_t>(src)];
      for (int l : pts_[static_cast<size_t>(ptr)]) {
        auto& out = pts_[static_cast<size_t>(l)];
        size_t before = out.size();
        out.insert(in.begin(), in.end());
        changed |= out.size() != before;
      }
    }
    // On-the-fly icall resolution.
    for (const auto& [ptr, call] : icall_sites_) {
      for (int t : pts_[static_cast<size_t>(ptr)]) {
        const PtaNode& n = nodes_[static_cast<size_t>(t)];
        if (n.kind != PtaNode::Kind::kFunc) {
          continue;
        }
        auto key = std::make_pair(call, n.func);
        if (wired_.insert(key).second) {
          WireCallee(*call, n.func);
          changed = true;
        }
      }
    }
  }
}

// Worklist solver. Copy edges form an explicit successor graph; load/store
// constraints are indexed by their pointer node and materialize new copy
// edges as the pointer's points-to set grows; icall sites wire callees the
// same way. Only nodes whose set actually grew are revisited. Computes the
// same least fixpoint as SolveExhaustive: both close the identical monotone
// constraint system, and icall wiring is gated by the same wired_ set.
void PointsToAnalysis::SolveWorklist() {
  const size_t n = nodes_.size();
  // Copy-successor adjacency with O(1) duplicate-edge suppression.
  std::vector<std::vector<int>> copy_succ(n);
  std::unordered_set<uint64_t> edge_set;
  edge_set.reserve(copy_edges_.size() * 2);
  // Per-pointer indexes of the complex constraints.
  std::vector<std::vector<int>> load_cons(n);   // ptr -> dsts
  std::vector<std::vector<int>> store_cons(n);  // ptr -> srcs
  std::vector<std::vector<const Expr*>> icall_cons(n);
  std::vector<char> on_list(n, 0);
  // WireCallee can mint nodes mid-solve (param/return nodes of a callee
  // nothing referenced before); grow the side tables to match.
  auto grow = [&] {
    if (copy_succ.size() < nodes_.size()) {
      copy_succ.resize(nodes_.size());
      load_cons.resize(nodes_.size());
      store_cons.resize(nodes_.size());
      icall_cons.resize(nodes_.size());
      on_list.resize(nodes_.size(), 0);
    }
  };
  for (const auto& [ptr, dst] : loads_) {
    load_cons[static_cast<size_t>(ptr)].push_back(dst);
  }
  for (const auto& [ptr, src] : stores_) {
    store_cons[static_cast<size_t>(ptr)].push_back(src);
  }
  for (const auto& [ptr, call] : icall_sites_) {
    icall_cons[static_cast<size_t>(ptr)].push_back(call);
  }

  std::vector<int> worklist;
  auto push = [&](int v) {
    if (!on_list[static_cast<size_t>(v)]) {
      on_list[static_cast<size_t>(v)] = 1;
      worklist.push_back(v);
    }
  };
  // Unions pts(from) into pts(to), scheduling `to` on growth.
  auto propagate = [&](int from, int to) {
    if (from == to) {
      return;
    }
    auto& dst = pts_[static_cast<size_t>(to)];
    size_t before = dst.size();
    const auto& src = pts_[static_cast<size_t>(from)];
    dst.insert(src.begin(), src.end());
    if (dst.size() != before) {
      push(to);
    }
  };
  // Inserts copy edge from->to if new, propagating immediately.
  auto add_edge = [&](int from, int to) {
    if (from == to) {
      return;
    }
    uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
                   static_cast<uint32_t>(to);
    if (edge_set.insert(key).second) {
      copy_succ[static_cast<size_t>(from)].push_back(to);
      propagate(from, to);
    }
  };

  for (const auto& [from, to] : copy_edges_) {
    add_edge(from, to);
  }
  // WireCallee appends to copy_edges_ during solving; edges past this
  // watermark are drained into the graph incrementally.
  size_t copy_watermark = copy_edges_.size();

  for (size_t i = 0; i < n; ++i) {
    if (!pts_[i].empty()) {
      push(static_cast<int>(i));
    }
  }

  while (!worklist.empty()) {
    int v = worklist.back();
    worklist.pop_back();
    on_list[static_cast<size_t>(v)] = 0;
    // Snapshot: WireCallee below may mint nodes and reallocate pts_/nodes_
    // and (via grow) the side tables, so don't hold references across it.
    const std::vector<int> pv(pts_[static_cast<size_t>(v)].begin(),
                              pts_[static_cast<size_t>(v)].end());
    for (int dst : load_cons[static_cast<size_t>(v)]) {
      for (int l : pv) {
        add_edge(l, dst);
      }
    }
    for (int src : store_cons[static_cast<size_t>(v)]) {
      for (int l : pv) {
        add_edge(src, l);
      }
    }
    const std::vector<const Expr*> calls = icall_cons[static_cast<size_t>(v)];
    for (const Expr* call : calls) {
      for (int t : pv) {
        if (nodes_[static_cast<size_t>(t)].kind != PtaNode::Kind::kFunc) {
          continue;
        }
        const Function* callee = nodes_[static_cast<size_t>(t)].func;
        if (wired_.insert(std::make_pair(call, callee)).second) {
          WireCallee(*call, callee);
        }
      }
      grow();
      while (copy_watermark < copy_edges_.size()) {
        const auto& [from, to] = copy_edges_[copy_watermark++];
        add_edge(from, to);
      }
    }
    for (int to : copy_succ[static_cast<size_t>(v)]) {
      propagate(v, to);
    }
  }
}

int PointsToAnalysis::InjectNode() {
  PtaNode node;
  node.kind = PtaNode::Kind::kTemp;
  return NewNode(node);
}

void PointsToAnalysis::InjectBase(int node, int loc) { AddBase(node, loc); }
void PointsToAnalysis::InjectCopy(int from, int to) { AddCopy(from, to); }
void PointsToAnalysis::InjectLoad(int ptr, int dst) { AddLoad(ptr, dst); }
void PointsToAnalysis::InjectStore(int ptr, int src) { AddStore(ptr, src); }

void PointsToAnalysis::SolveInjected() {
  if (solved_) {
    return;
  }
  auto start = std::chrono::steady_clock::now();
  Solve();
  solved_ = true;
  solve_seconds_ = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

const std::set<int>& PointsToAnalysis::PointsToSetOf(int node) const {
  OPEC_CHECK(node >= 0 && static_cast<size_t>(node) < pts_.size());
  return pts_[static_cast<size_t>(node)];
}

std::set<const Function*> PointsToAnalysis::ICallTargets(const Expr* icall) const {
  OPEC_CHECK(icall->kind == ExprKind::kICall);
  std::set<const Function*> out;
  auto it = temp_nodes_.find(icall->operands[0].get());
  if (it == temp_nodes_.end()) {
    return out;
  }
  for (int t : pts_[static_cast<size_t>(it->second)]) {
    const PtaNode& n = nodes_[static_cast<size_t>(t)];
    if (n.kind == PtaNode::Kind::kFunc &&
        n.func->param_count() == static_cast<int>(icall->operands.size()) - 1) {
      out.insert(n.func);
    }
  }
  return out;
}

std::set<const GlobalVariable*> PointsToAnalysis::PointeeGlobals(const Expr* e) const {
  std::set<const GlobalVariable*> out;
  auto it = temp_nodes_.find(e);
  if (it == temp_nodes_.end()) {
    return out;
  }
  for (int t : pts_[static_cast<size_t>(it->second)]) {
    const PtaNode& n = nodes_[static_cast<size_t>(t)];
    if (n.kind == PtaNode::Kind::kGlobal) {
      out.insert(n.global);
    }
  }
  return out;
}

std::set<uint32_t> PointsToAnalysis::PointeeConstAddrs(const Expr* e) const {
  std::set<uint32_t> out;
  auto it = temp_nodes_.find(e);
  if (it == temp_nodes_.end()) {
    return out;
  }
  for (int t : pts_[static_cast<size_t>(it->second)]) {
    const PtaNode& n = nodes_[static_cast<size_t>(t)];
    if (n.kind == PtaNode::Kind::kMemConst) {
      out.insert(n.const_addr);
    }
  }
  return out;
}

bool PointsToAnalysis::MayPointToLocal(const Expr* e) const {
  auto it = temp_nodes_.find(e);
  if (it == temp_nodes_.end()) {
    return false;
  }
  for (int t : pts_[static_cast<size_t>(it->second)]) {
    if (nodes_[static_cast<size_t>(t)].kind == PtaNode::Kind::kLocal) {
      return true;
    }
  }
  return false;
}

}  // namespace opec_analysis
