// Inclusion-based (Andersen-style) points-to analysis over guest IR.
//
// This is the reproduction's stand-in for SVF (Section 4.1/4.2): a
// conservative, over-approximating, flow- and field-insensitive
// inter-procedural analysis. Abstract locations are globals, locals,
// functions (as icall targets), and constant memory addresses (peripheral
// registers cast from integer literals). Indirect calls are resolved
// on-the-fly while solving.
//
// The analysis is deliberately imprecise in the same ways the paper reports
// for SVF: arrays and struct fields collapse onto their base variable, and
// icall target sets may contain spurious functions — which surfaces as
// execution-time over-privilege in Figure 11.

#ifndef SRC_ANALYSIS_POINTS_TO_H_
#define SRC_ANALYSIS_POINTS_TO_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/ir/module.h"

namespace opec_analysis {

// Fixpoint strategy. kWorklist is the default: nodes whose points-to set grew
// are revisited, load/store constraints materialize copy edges incrementally,
// and new edges are deduplicated — near-linear in practice. kExhaustive
// re-scans every constraint until quiescence (the reference semantics); both
// compute the same least fixpoint, which the differential tests check.
enum class SolverMode {
  kWorklist,
  kExhaustive,
};

// An abstract memory location / pointer node.
struct PtaNode {
  enum class Kind {
    kGlobal,    // a global variable (collapsed: includes its elements/fields)
    kLocal,     // a local variable of some function
    kFunc,      // a function, as the target of function pointers
    kMemConst,  // a constant address (peripheral register window)
    kTemp,      // the value of an expression
    kRet,       // a function's return value
  };
  Kind kind = Kind::kTemp;
  const opec_ir::GlobalVariable* global = nullptr;
  const opec_ir::Function* func = nullptr;  // kLocal: owner; kFunc/kRet: subject
  int local_slot = -1;
  uint32_t const_addr = 0;
  const opec_ir::Expr* expr = nullptr;  // kTemp
};

class PointsToAnalysis {
 public:
  explicit PointsToAnalysis(const opec_ir::Module& module,
                            SolverMode mode = SolverMode::kWorklist);

  // Builds constraints and solves to fixpoint. Idempotent.
  void Run();

  // --- Queries (valid after Run) ---

  // Functions a given indirect-call expression may target.
  std::set<const opec_ir::Function*> ICallTargets(const opec_ir::Expr* icall) const;

  // Abstract locations a pointer-valued expression may point to.
  // Returns global variables / constant addresses reachable from the
  // expression's temp node.
  std::set<const opec_ir::GlobalVariable*> PointeeGlobals(const opec_ir::Expr* e) const;
  std::set<uint32_t> PointeeConstAddrs(const opec_ir::Expr* e) const;
  // True if the expression may point to stack (local-variable) storage.
  bool MayPointToLocal(const opec_ir::Expr* e) const;

  double solve_seconds() const { return solve_seconds_; }
  size_t node_count() const { return nodes_.size(); }
  size_t constraint_count() const { return copy_edges_.size() + loads_.size() + stores_.size(); }
  SolverMode solver_mode() const { return mode_; }

  const opec_ir::Module& module() const { return module_; }

  // --- Synthetic-constraint interface (differential solver testing) ---
  //
  // Lets a test build an arbitrary constraint graph without walking a module,
  // solve it with the configured mode, and read raw points-to sets back, so
  // the worklist and exhaustive solvers can be compared on randomized inputs.
  int InjectNode();                    // fresh abstract node; returns its id
  void InjectBase(int node, int loc);  // loc ∈ pts(node)
  void InjectCopy(int from, int to);   // pts(from) ⊆ pts(to)
  void InjectLoad(int ptr, int dst);   // ∀ l ∈ pts(ptr): pts(l) ⊆ pts(dst)
  void InjectStore(int ptr, int src);  // ∀ l ∈ pts(ptr): pts(src) ⊆ pts(l)
  // Solves the injected constraints directly (no constraint generation from
  // the module). Idempotent, like Run().
  void SolveInjected();
  const std::set<int>& PointsToSetOf(int node) const;

 private:
  int NewNode(PtaNode node);
  int GlobalNode(const opec_ir::GlobalVariable* gv);
  int LocalNode(const opec_ir::Function* fn, int slot);
  int FuncNode(const opec_ir::Function* fn);
  int MemConstNode(uint32_t addr);
  int RetNode(const opec_ir::Function* fn);
  int TempNode(const opec_ir::Expr* e);

  void AddBase(int node, int loc);       // loc ∈ pts(node)
  void AddCopy(int from, int to);        // pts(from) ⊆ pts(to)
  void AddLoad(int ptr, int dst);        // ∀ l ∈ pts(ptr): pts(l) ⊆ pts(dst)
  void AddStore(int ptr, int src);       // ∀ l ∈ pts(ptr): pts(src) ⊆ pts(l)

  // Constraint generation.
  void ProcessFunction(const opec_ir::Function& fn);
  void ProcessStmt(const opec_ir::Function& fn, const opec_ir::Stmt& s);
  // Returns the temp node holding the expression's pointer value (creating
  // constraints for sub-expressions), or -1 when the expression cannot carry
  // a pointer we track.
  int ProcessExpr(const opec_ir::Function& fn, const opec_ir::Expr& e);
  // Returns the node of the *location* an lvalue denotes (collapsed), or -1.
  int LocationOf(const opec_ir::Function& fn, const opec_ir::Expr& lvalue);
  void WireCall(const opec_ir::Function& fn, const opec_ir::Expr& call, int temp);
  void WireCallee(const opec_ir::Expr& call, const opec_ir::Function* callee);

  void Solve();
  void SolveExhaustive();
  void SolveWorklist();

  const opec_ir::Module& module_;
  SolverMode mode_ = SolverMode::kWorklist;
  std::vector<PtaNode> nodes_;
  std::vector<std::set<int>> pts_;
  std::map<const opec_ir::GlobalVariable*, int> global_nodes_;
  std::map<std::pair<const opec_ir::Function*, int>, int> local_nodes_;
  std::map<const opec_ir::Function*, int> func_nodes_;
  std::map<uint32_t, int> memconst_nodes_;
  std::map<const opec_ir::Function*, int> ret_nodes_;
  std::map<const opec_ir::Expr*, int> temp_nodes_;

  std::vector<std::pair<int, int>> copy_edges_;
  std::vector<std::pair<int, int>> loads_;   // (ptr, dst)
  std::vector<std::pair<int, int>> stores_;  // (ptr, src)
  // Pending icall sites: (fnptr temp node, call expr) for on-the-fly wiring.
  std::vector<std::pair<int, const opec_ir::Expr*>> icall_sites_;
  std::set<std::pair<const opec_ir::Expr*, const opec_ir::Function*>> wired_;

  bool solved_ = false;
  double solve_seconds_ = 0;
};

}  // namespace opec_analysis

#endif  // SRC_ANALYSIS_POINTS_TO_H_
