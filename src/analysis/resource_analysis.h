// Resource-dependency analysis (Section 4.2): for every function, the global
// variables it may read/write (directly via def-use, indirectly via the
// points-to analysis) and the peripherals it may access (via constant memory
// addresses checked against the SoC datasheet, split into general and core
// peripherals).

#ifndef SRC_ANALYSIS_RESOURCE_ANALYSIS_H_
#define SRC_ANALYSIS_RESOURCE_ANALYSIS_H_

#include <map>
#include <set>
#include <string>

#include "src/analysis/points_to.h"
#include "src/hw/soc.h"
#include "src/ir/module.h"

namespace opec_analysis {

struct FunctionResources {
  std::set<const opec_ir::GlobalVariable*> reads;
  std::set<const opec_ir::GlobalVariable*> writes;
  // Names of general peripherals (from the datasheet) the function accesses.
  std::set<std::string> peripherals;
  // Core peripherals (on the PPB), which need privileged access.
  std::set<std::string> core_peripherals;

  std::set<const opec_ir::GlobalVariable*> AllGlobals() const {
    std::set<const opec_ir::GlobalVariable*> all = reads;
    all.insert(writes.begin(), writes.end());
    return all;
  }
};

class ResourceAnalysis {
 public:
  // Computes summaries for every function. `pta` is Run() if needed.
  static std::map<const opec_ir::Function*, FunctionResources> Run(
      const opec_ir::Module& module, PointsToAnalysis& pta, const opec_hw::SocDescription& soc);
};

}  // namespace opec_analysis

#endif  // SRC_ANALYSIS_RESOURCE_ANALYSIS_H_
