# Empty dependencies file for pinlock_attack.
# This may be replaced when dependencies are built.
