file(REMOVE_RECURSE
  "CMakeFiles/pinlock_attack.dir/pinlock_attack.cc.o"
  "CMakeFiles/pinlock_attack.dir/pinlock_attack.cc.o.d"
  "pinlock_attack"
  "pinlock_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinlock_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
