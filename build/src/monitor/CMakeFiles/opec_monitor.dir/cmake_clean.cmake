file(REMOVE_RECURSE
  "CMakeFiles/opec_monitor.dir/monitor.cc.o"
  "CMakeFiles/opec_monitor.dir/monitor.cc.o.d"
  "libopec_monitor.a"
  "libopec_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opec_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
