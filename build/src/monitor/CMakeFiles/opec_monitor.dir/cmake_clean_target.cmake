file(REMOVE_RECURSE
  "libopec_monitor.a"
)
