# Empty compiler generated dependencies file for opec_monitor.
# This may be replaced when dependencies are built.
