
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/image.cc" "src/compiler/CMakeFiles/opec_compiler.dir/image.cc.o" "gcc" "src/compiler/CMakeFiles/opec_compiler.dir/image.cc.o.d"
  "/root/repo/src/compiler/instrument.cc" "src/compiler/CMakeFiles/opec_compiler.dir/instrument.cc.o" "gcc" "src/compiler/CMakeFiles/opec_compiler.dir/instrument.cc.o.d"
  "/root/repo/src/compiler/layout.cc" "src/compiler/CMakeFiles/opec_compiler.dir/layout.cc.o" "gcc" "src/compiler/CMakeFiles/opec_compiler.dir/layout.cc.o.d"
  "/root/repo/src/compiler/opec_compiler.cc" "src/compiler/CMakeFiles/opec_compiler.dir/opec_compiler.cc.o" "gcc" "src/compiler/CMakeFiles/opec_compiler.dir/opec_compiler.cc.o.d"
  "/root/repo/src/compiler/partitioner.cc" "src/compiler/CMakeFiles/opec_compiler.dir/partitioner.cc.o" "gcc" "src/compiler/CMakeFiles/opec_compiler.dir/partitioner.cc.o.d"
  "/root/repo/src/compiler/policy_text.cc" "src/compiler/CMakeFiles/opec_compiler.dir/policy_text.cc.o" "gcc" "src/compiler/CMakeFiles/opec_compiler.dir/policy_text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/opec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/opec_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/opec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/opec_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/opec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
