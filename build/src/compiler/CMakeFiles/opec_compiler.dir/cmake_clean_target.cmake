file(REMOVE_RECURSE
  "libopec_compiler.a"
)
