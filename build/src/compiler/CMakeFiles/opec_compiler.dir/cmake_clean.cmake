file(REMOVE_RECURSE
  "CMakeFiles/opec_compiler.dir/image.cc.o"
  "CMakeFiles/opec_compiler.dir/image.cc.o.d"
  "CMakeFiles/opec_compiler.dir/instrument.cc.o"
  "CMakeFiles/opec_compiler.dir/instrument.cc.o.d"
  "CMakeFiles/opec_compiler.dir/layout.cc.o"
  "CMakeFiles/opec_compiler.dir/layout.cc.o.d"
  "CMakeFiles/opec_compiler.dir/opec_compiler.cc.o"
  "CMakeFiles/opec_compiler.dir/opec_compiler.cc.o.d"
  "CMakeFiles/opec_compiler.dir/partitioner.cc.o"
  "CMakeFiles/opec_compiler.dir/partitioner.cc.o.d"
  "CMakeFiles/opec_compiler.dir/policy_text.cc.o"
  "CMakeFiles/opec_compiler.dir/policy_text.cc.o.d"
  "libopec_compiler.a"
  "libopec_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opec_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
