# Empty compiler generated dependencies file for opec_compiler.
# This may be replaced when dependencies are built.
