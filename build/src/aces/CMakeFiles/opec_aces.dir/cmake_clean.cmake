file(REMOVE_RECURSE
  "CMakeFiles/opec_aces.dir/aces.cc.o"
  "CMakeFiles/opec_aces.dir/aces.cc.o.d"
  "libopec_aces.a"
  "libopec_aces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opec_aces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
