file(REMOVE_RECURSE
  "libopec_aces.a"
)
