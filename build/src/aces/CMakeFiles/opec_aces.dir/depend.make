# Empty dependencies file for opec_aces.
# This may be replaced when dependencies are built.
