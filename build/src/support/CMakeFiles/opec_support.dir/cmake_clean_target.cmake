file(REMOVE_RECURSE
  "libopec_support.a"
)
