file(REMOVE_RECURSE
  "CMakeFiles/opec_support.dir/check.cc.o"
  "CMakeFiles/opec_support.dir/check.cc.o.d"
  "CMakeFiles/opec_support.dir/text.cc.o"
  "CMakeFiles/opec_support.dir/text.cc.o.d"
  "libopec_support.a"
  "libopec_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opec_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
