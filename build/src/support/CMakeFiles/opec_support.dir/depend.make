# Empty dependencies file for opec_support.
# This may be replaced when dependencies are built.
