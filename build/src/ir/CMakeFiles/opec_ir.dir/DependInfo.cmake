
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cc" "src/ir/CMakeFiles/opec_ir.dir/builder.cc.o" "gcc" "src/ir/CMakeFiles/opec_ir.dir/builder.cc.o.d"
  "/root/repo/src/ir/expr.cc" "src/ir/CMakeFiles/opec_ir.dir/expr.cc.o" "gcc" "src/ir/CMakeFiles/opec_ir.dir/expr.cc.o.d"
  "/root/repo/src/ir/module.cc" "src/ir/CMakeFiles/opec_ir.dir/module.cc.o" "gcc" "src/ir/CMakeFiles/opec_ir.dir/module.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/ir/CMakeFiles/opec_ir.dir/printer.cc.o" "gcc" "src/ir/CMakeFiles/opec_ir.dir/printer.cc.o.d"
  "/root/repo/src/ir/stmt.cc" "src/ir/CMakeFiles/opec_ir.dir/stmt.cc.o" "gcc" "src/ir/CMakeFiles/opec_ir.dir/stmt.cc.o.d"
  "/root/repo/src/ir/type.cc" "src/ir/CMakeFiles/opec_ir.dir/type.cc.o" "gcc" "src/ir/CMakeFiles/opec_ir.dir/type.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/opec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
