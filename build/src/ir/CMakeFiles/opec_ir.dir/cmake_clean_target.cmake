file(REMOVE_RECURSE
  "libopec_ir.a"
)
