# Empty compiler generated dependencies file for opec_ir.
# This may be replaced when dependencies are built.
