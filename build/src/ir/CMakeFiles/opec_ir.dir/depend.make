# Empty dependencies file for opec_ir.
# This may be replaced when dependencies are built.
