file(REMOVE_RECURSE
  "CMakeFiles/opec_ir.dir/builder.cc.o"
  "CMakeFiles/opec_ir.dir/builder.cc.o.d"
  "CMakeFiles/opec_ir.dir/expr.cc.o"
  "CMakeFiles/opec_ir.dir/expr.cc.o.d"
  "CMakeFiles/opec_ir.dir/module.cc.o"
  "CMakeFiles/opec_ir.dir/module.cc.o.d"
  "CMakeFiles/opec_ir.dir/printer.cc.o"
  "CMakeFiles/opec_ir.dir/printer.cc.o.d"
  "CMakeFiles/opec_ir.dir/stmt.cc.o"
  "CMakeFiles/opec_ir.dir/stmt.cc.o.d"
  "CMakeFiles/opec_ir.dir/type.cc.o"
  "CMakeFiles/opec_ir.dir/type.cc.o.d"
  "libopec_ir.a"
  "libopec_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opec_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
