file(REMOVE_RECURSE
  "CMakeFiles/opec_analysis.dir/call_graph.cc.o"
  "CMakeFiles/opec_analysis.dir/call_graph.cc.o.d"
  "CMakeFiles/opec_analysis.dir/points_to.cc.o"
  "CMakeFiles/opec_analysis.dir/points_to.cc.o.d"
  "CMakeFiles/opec_analysis.dir/resource_analysis.cc.o"
  "CMakeFiles/opec_analysis.dir/resource_analysis.cc.o.d"
  "libopec_analysis.a"
  "libopec_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opec_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
