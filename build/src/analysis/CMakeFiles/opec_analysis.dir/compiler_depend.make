# Empty compiler generated dependencies file for opec_analysis.
# This may be replaced when dependencies are built.
