file(REMOVE_RECURSE
  "libopec_analysis.a"
)
