
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/all_apps.cc" "src/apps/CMakeFiles/opec_apps.dir/all_apps.cc.o" "gcc" "src/apps/CMakeFiles/opec_apps.dir/all_apps.cc.o.d"
  "/root/repo/src/apps/animation.cc" "src/apps/CMakeFiles/opec_apps.dir/animation.cc.o" "gcc" "src/apps/CMakeFiles/opec_apps.dir/animation.cc.o.d"
  "/root/repo/src/apps/camera.cc" "src/apps/CMakeFiles/opec_apps.dir/camera.cc.o" "gcc" "src/apps/CMakeFiles/opec_apps.dir/camera.cc.o.d"
  "/root/repo/src/apps/coremark.cc" "src/apps/CMakeFiles/opec_apps.dir/coremark.cc.o" "gcc" "src/apps/CMakeFiles/opec_apps.dir/coremark.cc.o.d"
  "/root/repo/src/apps/fatfs_usd.cc" "src/apps/CMakeFiles/opec_apps.dir/fatfs_usd.cc.o" "gcc" "src/apps/CMakeFiles/opec_apps.dir/fatfs_usd.cc.o.d"
  "/root/repo/src/apps/guest/fat16_guest.cc" "src/apps/CMakeFiles/opec_apps.dir/guest/fat16_guest.cc.o" "gcc" "src/apps/CMakeFiles/opec_apps.dir/guest/fat16_guest.cc.o.d"
  "/root/repo/src/apps/guest/fat16_host.cc" "src/apps/CMakeFiles/opec_apps.dir/guest/fat16_host.cc.o" "gcc" "src/apps/CMakeFiles/opec_apps.dir/guest/fat16_host.cc.o.d"
  "/root/repo/src/apps/guest/heap_alloc.cc" "src/apps/CMakeFiles/opec_apps.dir/guest/heap_alloc.cc.o" "gcc" "src/apps/CMakeFiles/opec_apps.dir/guest/heap_alloc.cc.o.d"
  "/root/repo/src/apps/guest/lcd_driver.cc" "src/apps/CMakeFiles/opec_apps.dir/guest/lcd_driver.cc.o" "gcc" "src/apps/CMakeFiles/opec_apps.dir/guest/lcd_driver.cc.o.d"
  "/root/repo/src/apps/guest/net_host.cc" "src/apps/CMakeFiles/opec_apps.dir/guest/net_host.cc.o" "gcc" "src/apps/CMakeFiles/opec_apps.dir/guest/net_host.cc.o.d"
  "/root/repo/src/apps/guest/sd_driver.cc" "src/apps/CMakeFiles/opec_apps.dir/guest/sd_driver.cc.o" "gcc" "src/apps/CMakeFiles/opec_apps.dir/guest/sd_driver.cc.o.d"
  "/root/repo/src/apps/lcd_usd.cc" "src/apps/CMakeFiles/opec_apps.dir/lcd_usd.cc.o" "gcc" "src/apps/CMakeFiles/opec_apps.dir/lcd_usd.cc.o.d"
  "/root/repo/src/apps/pinlock.cc" "src/apps/CMakeFiles/opec_apps.dir/pinlock.cc.o" "gcc" "src/apps/CMakeFiles/opec_apps.dir/pinlock.cc.o.d"
  "/root/repo/src/apps/runner.cc" "src/apps/CMakeFiles/opec_apps.dir/runner.cc.o" "gcc" "src/apps/CMakeFiles/opec_apps.dir/runner.cc.o.d"
  "/root/repo/src/apps/tcp_echo.cc" "src/apps/CMakeFiles/opec_apps.dir/tcp_echo.cc.o" "gcc" "src/apps/CMakeFiles/opec_apps.dir/tcp_echo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/opec_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/opec_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/opec_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/opec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/opec_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/opec_support.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/opec_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
