file(REMOVE_RECURSE
  "libopec_apps.a"
)
