# Empty compiler generated dependencies file for opec_apps.
# This may be replaced when dependencies are built.
