file(REMOVE_RECURSE
  "CMakeFiles/opec_apps.dir/all_apps.cc.o"
  "CMakeFiles/opec_apps.dir/all_apps.cc.o.d"
  "CMakeFiles/opec_apps.dir/animation.cc.o"
  "CMakeFiles/opec_apps.dir/animation.cc.o.d"
  "CMakeFiles/opec_apps.dir/camera.cc.o"
  "CMakeFiles/opec_apps.dir/camera.cc.o.d"
  "CMakeFiles/opec_apps.dir/coremark.cc.o"
  "CMakeFiles/opec_apps.dir/coremark.cc.o.d"
  "CMakeFiles/opec_apps.dir/fatfs_usd.cc.o"
  "CMakeFiles/opec_apps.dir/fatfs_usd.cc.o.d"
  "CMakeFiles/opec_apps.dir/guest/fat16_guest.cc.o"
  "CMakeFiles/opec_apps.dir/guest/fat16_guest.cc.o.d"
  "CMakeFiles/opec_apps.dir/guest/fat16_host.cc.o"
  "CMakeFiles/opec_apps.dir/guest/fat16_host.cc.o.d"
  "CMakeFiles/opec_apps.dir/guest/heap_alloc.cc.o"
  "CMakeFiles/opec_apps.dir/guest/heap_alloc.cc.o.d"
  "CMakeFiles/opec_apps.dir/guest/lcd_driver.cc.o"
  "CMakeFiles/opec_apps.dir/guest/lcd_driver.cc.o.d"
  "CMakeFiles/opec_apps.dir/guest/net_host.cc.o"
  "CMakeFiles/opec_apps.dir/guest/net_host.cc.o.d"
  "CMakeFiles/opec_apps.dir/guest/sd_driver.cc.o"
  "CMakeFiles/opec_apps.dir/guest/sd_driver.cc.o.d"
  "CMakeFiles/opec_apps.dir/lcd_usd.cc.o"
  "CMakeFiles/opec_apps.dir/lcd_usd.cc.o.d"
  "CMakeFiles/opec_apps.dir/pinlock.cc.o"
  "CMakeFiles/opec_apps.dir/pinlock.cc.o.d"
  "CMakeFiles/opec_apps.dir/runner.cc.o"
  "CMakeFiles/opec_apps.dir/runner.cc.o.d"
  "CMakeFiles/opec_apps.dir/tcp_echo.cc.o"
  "CMakeFiles/opec_apps.dir/tcp_echo.cc.o.d"
  "libopec_apps.a"
  "libopec_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opec_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
