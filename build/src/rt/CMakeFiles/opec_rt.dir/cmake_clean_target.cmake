file(REMOVE_RECURSE
  "libopec_rt.a"
)
