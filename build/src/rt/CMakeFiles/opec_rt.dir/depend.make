# Empty dependencies file for opec_rt.
# This may be replaced when dependencies are built.
