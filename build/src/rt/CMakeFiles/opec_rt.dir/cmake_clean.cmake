file(REMOVE_RECURSE
  "CMakeFiles/opec_rt.dir/engine.cc.o"
  "CMakeFiles/opec_rt.dir/engine.cc.o.d"
  "libopec_rt.a"
  "libopec_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opec_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
