# Empty compiler generated dependencies file for opec_metrics.
# This may be replaced when dependencies are built.
