file(REMOVE_RECURSE
  "libopec_metrics.a"
)
