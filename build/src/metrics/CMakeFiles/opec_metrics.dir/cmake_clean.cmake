file(REMOVE_RECURSE
  "CMakeFiles/opec_metrics.dir/over_privilege.cc.o"
  "CMakeFiles/opec_metrics.dir/over_privilege.cc.o.d"
  "CMakeFiles/opec_metrics.dir/report.cc.o"
  "CMakeFiles/opec_metrics.dir/report.cc.o.d"
  "libopec_metrics.a"
  "libopec_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opec_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
