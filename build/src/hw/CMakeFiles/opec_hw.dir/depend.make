# Empty dependencies file for opec_hw.
# This may be replaced when dependencies are built.
