file(REMOVE_RECURSE
  "libopec_hw.a"
)
