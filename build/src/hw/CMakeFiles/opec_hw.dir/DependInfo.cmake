
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/bus.cc" "src/hw/CMakeFiles/opec_hw.dir/bus.cc.o" "gcc" "src/hw/CMakeFiles/opec_hw.dir/bus.cc.o.d"
  "/root/repo/src/hw/devices/block_device.cc" "src/hw/CMakeFiles/opec_hw.dir/devices/block_device.cc.o" "gcc" "src/hw/CMakeFiles/opec_hw.dir/devices/block_device.cc.o.d"
  "/root/repo/src/hw/devices/camera.cc" "src/hw/CMakeFiles/opec_hw.dir/devices/camera.cc.o" "gcc" "src/hw/CMakeFiles/opec_hw.dir/devices/camera.cc.o.d"
  "/root/repo/src/hw/devices/ethernet.cc" "src/hw/CMakeFiles/opec_hw.dir/devices/ethernet.cc.o" "gcc" "src/hw/CMakeFiles/opec_hw.dir/devices/ethernet.cc.o.d"
  "/root/repo/src/hw/devices/gpio.cc" "src/hw/CMakeFiles/opec_hw.dir/devices/gpio.cc.o" "gcc" "src/hw/CMakeFiles/opec_hw.dir/devices/gpio.cc.o.d"
  "/root/repo/src/hw/devices/lcd.cc" "src/hw/CMakeFiles/opec_hw.dir/devices/lcd.cc.o" "gcc" "src/hw/CMakeFiles/opec_hw.dir/devices/lcd.cc.o.d"
  "/root/repo/src/hw/devices/uart.cc" "src/hw/CMakeFiles/opec_hw.dir/devices/uart.cc.o" "gcc" "src/hw/CMakeFiles/opec_hw.dir/devices/uart.cc.o.d"
  "/root/repo/src/hw/mpu.cc" "src/hw/CMakeFiles/opec_hw.dir/mpu.cc.o" "gcc" "src/hw/CMakeFiles/opec_hw.dir/mpu.cc.o.d"
  "/root/repo/src/hw/soc.cc" "src/hw/CMakeFiles/opec_hw.dir/soc.cc.o" "gcc" "src/hw/CMakeFiles/opec_hw.dir/soc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/opec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
