file(REMOVE_RECURSE
  "CMakeFiles/opec_hw.dir/bus.cc.o"
  "CMakeFiles/opec_hw.dir/bus.cc.o.d"
  "CMakeFiles/opec_hw.dir/devices/block_device.cc.o"
  "CMakeFiles/opec_hw.dir/devices/block_device.cc.o.d"
  "CMakeFiles/opec_hw.dir/devices/camera.cc.o"
  "CMakeFiles/opec_hw.dir/devices/camera.cc.o.d"
  "CMakeFiles/opec_hw.dir/devices/ethernet.cc.o"
  "CMakeFiles/opec_hw.dir/devices/ethernet.cc.o.d"
  "CMakeFiles/opec_hw.dir/devices/gpio.cc.o"
  "CMakeFiles/opec_hw.dir/devices/gpio.cc.o.d"
  "CMakeFiles/opec_hw.dir/devices/lcd.cc.o"
  "CMakeFiles/opec_hw.dir/devices/lcd.cc.o.d"
  "CMakeFiles/opec_hw.dir/devices/uart.cc.o"
  "CMakeFiles/opec_hw.dir/devices/uart.cc.o.d"
  "CMakeFiles/opec_hw.dir/mpu.cc.o"
  "CMakeFiles/opec_hw.dir/mpu.cc.o.d"
  "CMakeFiles/opec_hw.dir/soc.cc.o"
  "CMakeFiles/opec_hw.dir/soc.cc.o.d"
  "libopec_hw.a"
  "libopec_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opec_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
