# Empty dependencies file for figure9_overhead.
# This may be replaced when dependencies are built.
