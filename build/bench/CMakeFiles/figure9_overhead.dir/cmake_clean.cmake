file(REMOVE_RECURSE
  "CMakeFiles/figure9_overhead.dir/figure9_overhead.cc.o"
  "CMakeFiles/figure9_overhead.dir/figure9_overhead.cc.o.d"
  "figure9_overhead"
  "figure9_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure9_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
