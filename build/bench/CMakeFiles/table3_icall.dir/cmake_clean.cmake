file(REMOVE_RECURSE
  "CMakeFiles/table3_icall.dir/table3_icall.cc.o"
  "CMakeFiles/table3_icall.dir/table3_icall.cc.o.d"
  "table3_icall"
  "table3_icall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_icall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
