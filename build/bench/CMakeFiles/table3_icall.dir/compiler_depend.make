# Empty compiler generated dependencies file for table3_icall.
# This may be replaced when dependencies are built.
