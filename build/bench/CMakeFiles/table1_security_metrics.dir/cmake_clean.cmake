file(REMOVE_RECURSE
  "CMakeFiles/table1_security_metrics.dir/table1_security_metrics.cc.o"
  "CMakeFiles/table1_security_metrics.dir/table1_security_metrics.cc.o.d"
  "table1_security_metrics"
  "table1_security_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_security_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
