file(REMOVE_RECURSE
  "CMakeFiles/ablation_shadow_sync.dir/ablation_shadow_sync.cc.o"
  "CMakeFiles/ablation_shadow_sync.dir/ablation_shadow_sync.cc.o.d"
  "ablation_shadow_sync"
  "ablation_shadow_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shadow_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
