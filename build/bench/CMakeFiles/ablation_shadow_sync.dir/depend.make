# Empty dependencies file for ablation_shadow_sync.
# This may be replaced when dependencies are built.
