file(REMOVE_RECURSE
  "CMakeFiles/host_speed.dir/host_speed.cc.o"
  "CMakeFiles/host_speed.dir/host_speed.cc.o.d"
  "host_speed"
  "host_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
