
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/host_speed.cc" "bench/CMakeFiles/host_speed.dir/host_speed.cc.o" "gcc" "bench/CMakeFiles/host_speed.dir/host_speed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/opec_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/aces/CMakeFiles/opec_aces.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/opec_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/opec_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/opec_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/opec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/opec_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/opec_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/opec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/opec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
