# Empty dependencies file for host_speed.
# This may be replaced when dependencies are built.
