file(REMOVE_RECURSE
  "CMakeFiles/figure11_et.dir/figure11_et.cc.o"
  "CMakeFiles/figure11_et.dir/figure11_et.cc.o.d"
  "figure11_et"
  "figure11_et.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure11_et.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
