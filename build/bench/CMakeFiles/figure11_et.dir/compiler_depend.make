# Empty compiler generated dependencies file for figure11_et.
# This may be replaced when dependencies are built.
