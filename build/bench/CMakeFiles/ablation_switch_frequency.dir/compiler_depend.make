# Empty compiler generated dependencies file for ablation_switch_frequency.
# This may be replaced when dependencies are built.
