file(REMOVE_RECURSE
  "CMakeFiles/ablation_switch_frequency.dir/ablation_switch_frequency.cc.o"
  "CMakeFiles/ablation_switch_frequency.dir/ablation_switch_frequency.cc.o.d"
  "ablation_switch_frequency"
  "ablation_switch_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_switch_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
