# Empty dependencies file for figure10_pt.
# This may be replaced when dependencies are built.
