file(REMOVE_RECURSE
  "CMakeFiles/figure10_pt.dir/figure10_pt.cc.o"
  "CMakeFiles/figure10_pt.dir/figure10_pt.cc.o.d"
  "figure10_pt"
  "figure10_pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure10_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
