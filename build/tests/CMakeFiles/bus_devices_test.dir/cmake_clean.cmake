file(REMOVE_RECURSE
  "CMakeFiles/bus_devices_test.dir/bus_devices_test.cc.o"
  "CMakeFiles/bus_devices_test.dir/bus_devices_test.cc.o.d"
  "bus_devices_test"
  "bus_devices_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_devices_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
