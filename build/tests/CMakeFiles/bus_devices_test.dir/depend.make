# Empty dependencies file for bus_devices_test.
# This may be replaced when dependencies are built.
