# Empty dependencies file for mpu_test.
# This may be replaced when dependencies are built.
