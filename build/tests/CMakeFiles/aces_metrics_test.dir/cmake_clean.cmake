file(REMOVE_RECURSE
  "CMakeFiles/aces_metrics_test.dir/aces_metrics_test.cc.o"
  "CMakeFiles/aces_metrics_test.dir/aces_metrics_test.cc.o.d"
  "aces_metrics_test"
  "aces_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aces_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
