# Empty compiler generated dependencies file for aces_metrics_test.
# This may be replaced when dependencies are built.
