file(REMOVE_RECURSE
  "CMakeFiles/apps_scenario_test.dir/apps_scenario_test.cc.o"
  "CMakeFiles/apps_scenario_test.dir/apps_scenario_test.cc.o.d"
  "apps_scenario_test"
  "apps_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
