file(REMOVE_RECURSE
  "CMakeFiles/pinlock_smoke_test.dir/pinlock_smoke_test.cc.o"
  "CMakeFiles/pinlock_smoke_test.dir/pinlock_smoke_test.cc.o.d"
  "pinlock_smoke_test"
  "pinlock_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinlock_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
