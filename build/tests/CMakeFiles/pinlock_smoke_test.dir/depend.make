# Empty dependencies file for pinlock_smoke_test.
# This may be replaced when dependencies are built.
