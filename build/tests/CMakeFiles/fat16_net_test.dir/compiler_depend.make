# Empty compiler generated dependencies file for fat16_net_test.
# This may be replaced when dependencies are built.
