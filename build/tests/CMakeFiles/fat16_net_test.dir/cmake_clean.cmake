file(REMOVE_RECURSE
  "CMakeFiles/fat16_net_test.dir/fat16_net_test.cc.o"
  "CMakeFiles/fat16_net_test.dir/fat16_net_test.cc.o.d"
  "fat16_net_test"
  "fat16_net_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fat16_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
