# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(pinlock_smoke_test "/root/repo/build/tests/pinlock_smoke_test")
set_tests_properties(pinlock_smoke_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;opec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(apps_scenario_test "/root/repo/build/tests/apps_scenario_test")
set_tests_properties(apps_scenario_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;opec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ir_test "/root/repo/build/tests/ir_test")
set_tests_properties(ir_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;opec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mpu_test "/root/repo/build/tests/mpu_test")
set_tests_properties(mpu_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;opec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bus_devices_test "/root/repo/build/tests/bus_devices_test")
set_tests_properties(bus_devices_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;opec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_test "/root/repo/build/tests/engine_test")
set_tests_properties(engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;opec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;opec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(compiler_test "/root/repo/build/tests/compiler_test")
set_tests_properties(compiler_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;opec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(monitor_test "/root/repo/build/tests/monitor_test")
set_tests_properties(monitor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;opec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(aces_metrics_test "/root/repo/build/tests/aces_metrics_test")
set_tests_properties(aces_metrics_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;opec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(security_test "/root/repo/build/tests/security_test")
set_tests_properties(security_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;opec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fat16_net_test "/root/repo/build/tests/fat16_net_test")
set_tests_properties(fat16_net_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;opec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(heap_test "/root/repo/build/tests/heap_test")
set_tests_properties(heap_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;opec_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;22;opec_test;/root/repo/tests/CMakeLists.txt;0;")
